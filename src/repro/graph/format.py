"""The external-memory edge-list format (§3.5.2).

One file holds the edge lists of every vertex, ordered by vertex ID.  Each
edge list is::

    +------------+------------+---------------------------+
    | vertex id  |   degree   |  neighbor ids (u32 each)  |
    |   (u32)    |   (u32)    |                           |
    +------------+------------+---------------------------+

Edge *attributes* are stored in a separate file with the same per-vertex
ordering (one fixed-width value per edge), so algorithms that do not need
attributes never read them — the column-store trick the paper borrows from
database systems.

Everything is little-endian and 4-byte aligned, so a
:class:`~repro.graph.page_vertex.PageVertex` can be parsed zero-copy from
cached SAFS pages with ``numpy.frombuffer``.
"""

from typing import Tuple

import numpy as np

#: Bytes per edge-list header (vertex id + degree, u32 each).
HEADER_BYTES = 8
#: Bytes per stored edge (a u32 neighbor id).
EDGE_BYTES = 4
#: Bytes per stored edge attribute (a float32 weight by default).
ATTR_BYTES = 4


def edge_list_size(degree: int) -> int:
    """On-SSD bytes of one edge list with ``degree`` edges."""
    if degree < 0:
        raise ValueError("degree cannot be negative")
    return HEADER_BYTES + degree * EDGE_BYTES


def serialize_adjacency(
    indptr: np.ndarray, indices: np.ndarray
) -> Tuple[bytes, np.ndarray]:
    """Serialise a CSR adjacency into the on-SSD edge-list file.

    ``indptr`` has ``n + 1`` entries; vertex ``v``'s neighbors are
    ``indices[indptr[v]:indptr[v + 1]]`` and must already be sorted by the
    caller if sortedness matters to the algorithm.

    Returns ``(file_bytes, offsets)`` where ``offsets[v]`` is the byte
    offset of vertex ``v``'s edge list and ``offsets[n]`` the file size.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.uint32)
    if indptr.ndim != 1 or indptr.size < 1:
        raise ValueError("indptr must be a 1-D array with at least one entry")
    if indptr[0] != 0 or indptr[-1] != indices.size:
        raise ValueError("indptr must start at 0 and end at len(indices)")
    if np.any(np.diff(indptr) < 0):
        raise ValueError("indptr must be non-decreasing")
    num_vertices = indptr.size - 1
    degrees = np.diff(indptr)
    sizes = HEADER_BYTES + degrees * EDGE_BYTES
    offsets = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])

    # Build the whole file as one u32 array: headers interleaved with edges.
    words = np.empty(offsets[-1] // 4, dtype="<u4")
    word_offsets = offsets[:-1] // 4
    words[word_offsets] = np.arange(num_vertices, dtype=np.uint32)
    words[word_offsets + 1] = degrees.astype(np.uint32)
    # Scatter the neighbor ids: target word index for each edge is its
    # vertex's data start plus its rank within the vertex.
    if indices.size:
        edge_vertex = np.repeat(np.arange(num_vertices), degrees)
        rank = np.arange(indices.size, dtype=np.int64) - indptr[edge_vertex]
        words[word_offsets[edge_vertex] + 2 + rank] = indices
    return words.tobytes(), offsets


def serialize_attributes(
    indptr: np.ndarray, attrs: np.ndarray
) -> Tuple[bytes, np.ndarray]:
    """Serialise per-edge attributes into the detached attribute file.

    ``attrs`` holds one float32 per edge in the same order as the CSR
    ``indices``.  Returns ``(file_bytes, offsets)`` with ``offsets[v]`` the
    byte offset of vertex ``v``'s attribute block.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    attrs = np.asarray(attrs, dtype="<f4")
    if attrs.size != indptr[-1]:
        raise ValueError("one attribute per edge is required")
    degrees = np.diff(indptr)
    offsets = np.zeros(indptr.size, dtype=np.int64)
    np.cumsum(degrees * ATTR_BYTES, out=offsets[1:])
    return attrs.tobytes(), offsets


def parse_edge_list(data: memoryview, offset: int = 0) -> Tuple[int, np.ndarray]:
    """Parse one edge list at ``offset`` of a file view, zero-copy.

    Returns ``(vertex_id, neighbors)``.  Raises :class:`ValueError` on a
    truncated buffer — a header promising more edges than the view holds.
    """
    if offset < 0 or offset + HEADER_BYTES > len(data):
        raise ValueError("buffer too small for an edge-list header")
    header = np.frombuffer(data, dtype="<u4", count=2, offset=offset)
    vertex_id = int(header[0])
    degree = int(header[1])
    end = offset + HEADER_BYTES + degree * EDGE_BYTES
    if end > len(data):
        raise ValueError(
            f"edge list of vertex {vertex_id} truncated: needs {end - offset} "
            f"bytes at offset {offset}, buffer has {len(data) - offset}"
        )
    neighbors = np.frombuffer(
        data, dtype="<u4", count=degree, offset=offset + HEADER_BYTES
    )
    return vertex_id, neighbors


def adjacency_from_edges(
    edges: np.ndarray, num_vertices: int, sort_neighbors: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Build CSR ``(indptr, indices)`` from an ``(m, 2)`` edge array.

    Parallel edges are kept (the generators may emit them deliberately);
    callers wanting simple graphs deduplicate first.
    """
    edges = np.asarray(edges)
    if edges.size == 0:
        return np.zeros(num_vertices + 1, dtype=np.int64), np.zeros(0, dtype=np.uint32)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError("edges must be an (m, 2) array")
    if edges.min() < 0 or edges.max() >= num_vertices:
        raise ValueError("edge endpoints must lie in [0, num_vertices)")
    src = edges[:, 0].astype(np.int64)
    dst = edges[:, 1].astype(np.uint32)
    if sort_neighbors:
        order = np.lexsort((dst, src))
    else:
        order = np.argsort(src, kind="stable")
    indices = dst[order]
    counts = np.bincount(src, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, indices
