"""Calibrated CPU cost model for the simulated machine.

The paper's testbed is a four-socket Intel Xeon E5-4620 (32 cores, 64
hardware threads) running 32 worker threads.  All constants below are
per-operation CPU times in **simulated seconds**; they were chosen so that

- in-memory FlashGraph lands in the same band as Galois (Figure 10),
- semi-external FlashGraph saturates CPU before I/O for CPU-heavy
  applications (WCC, PageRank) and saturates I/O for BFS (Figure 9),
- per-request kernel-side I/O cost is large enough that merging requests in
  the engine visibly beats merging in the filesystem (Figure 12).

The absolute values are unremarkable commodity-server numbers (a few
nanoseconds per edge, a couple of microseconds per I/O request); only the
*ratios* matter for reproducing the paper's shapes.
"""

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass(frozen=True)
class CostModel:
    """Per-operation CPU costs and machine geometry.

    Instances are immutable; use :meth:`with_overrides` to derive variants
    (e.g. the Galois baseline lowers ``cpu_per_edge_mem``).
    """

    #: Worker threads the engine simulates (paper: 32 for every engine).
    num_threads: int = 32
    #: Physical cores; with hyperthreading the paper treats 50% utilisation
    #: of 64 hardware threads as CPU-saturated, i.e. 32 busy cores.
    num_cores: int = 32

    #: Parsing and processing one edge out of a cached SAFS page.
    cpu_per_edge_sem: float = 9e-9
    #: Processing one edge from an in-memory edge array (no page parsing).
    cpu_per_edge_mem: float = 6e-9
    #: Invoking ``run()`` on an active vertex (scheduling + state check).
    cpu_per_vertex_run: float = 120e-9
    #: Delivering one vertex message (buffered send + receive + dispatch).
    cpu_per_message: float = 30e-9
    #: Multicast delivery: one copy per *thread*, amortised per recipient.
    cpu_per_multicast_recipient: float = 12e-9

    #: Issuing one asynchronous I/O request through the SAFS user-task
    #: interface (no buffer allocation, no copy).
    cpu_per_io_request: float = 2.0e-6
    #: Issuing one request through a kernel filesystem (baselines; also used
    #: by the "merge in SAFS / in the block layer" ablation of Figure 12).
    cpu_per_io_request_kernel: float = 9.0e-6
    #: Looking a page up in the SAFS page cache (hit path).
    cpu_per_cache_lookup: float = 0.4e-6
    #: Kernel CPU consumed per 4KB page moved from SSD to the page cache.
    #: This is what makes triangle counting burn "almost 8 CPU cores" in
    #: kernel space in Figure 9.
    cpu_per_page_transfer: float = 1.1e-6

    #: Decoding one byte of a compressed (format v2) edge list: tag-byte
    #: read, shift/mask unpack and the delta prefix sum, amortised per
    #: encoded byte.  v1 pays nothing (its parse is a zero-copy cast).
    #: At ~2.2 encoded bytes per edge this adds ~3 ns/edge on top of
    #: ``cpu_per_edge_sem`` — decode stays far cheaper than the SSD bytes
    #: it saves, matching the BigSparse/Graphyti observation.
    cpu_per_decode_byte: float = 1.5e-9

    #: Extra per-vertex cost when the load balancer executes a stolen vertex
    #: (vertex state lives on a remote NUMA node; §3.8.1).
    cpu_steal_penalty: float = 60e-9

    #: Wall-clock cost of the per-iteration barrier (waking 32 workers,
    #: swapping frontier queues).  Comparable to Galois's scheduler round
    #: cost; matters only on small or high-diameter graphs.
    iteration_barrier: float = 25e-6

    def with_overrides(self, **overrides: float) -> "CostModel":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    def describe(self) -> Dict[str, float]:
        """All constants as a plain dict (used by the bench reports)."""
        return {
            "num_threads": self.num_threads,
            "num_cores": self.num_cores,
            "cpu_per_edge_sem": self.cpu_per_edge_sem,
            "cpu_per_edge_mem": self.cpu_per_edge_mem,
            "cpu_per_vertex_run": self.cpu_per_vertex_run,
            "cpu_per_message": self.cpu_per_message,
            "cpu_per_multicast_recipient": self.cpu_per_multicast_recipient,
            "cpu_per_io_request": self.cpu_per_io_request,
            "cpu_per_io_request_kernel": self.cpu_per_io_request_kernel,
            "cpu_per_cache_lookup": self.cpu_per_cache_lookup,
            "cpu_per_page_transfer": self.cpu_per_page_transfer,
            "cpu_per_decode_byte": self.cpu_per_decode_byte,
            "cpu_steal_penalty": self.cpu_steal_penalty,
            "iteration_barrier": self.iteration_barrier,
        }


#: The default machine used throughout the evaluation.
DEFAULT_COST_MODEL = CostModel()
