"""Service-time model for a single commodity SSD.

The paper's array is built from OCZ Vertex 4 drives delivering roughly
60,000 random 4KB reads per second each, with sequential throughput only
2–3x higher than random 4KB throughput — the property that lets FlashGraph
prioritise *reading fewer bytes* over *reading sequentially* (§3).

The model is a single FIFO server with pipelined completion latency:

- a request for ``n`` pages occupies the device for
  ``fixed_overhead + n * page_transfer_time`` seconds,
- ``fixed_overhead`` is derived from the device's IOPS limit, so one-page
  random reads sustain exactly ``max_iops``,
- large merged requests asymptotically reach ``seq_bandwidth``,
- every completion is additionally delayed by ``read_latency`` without
  occupying the server (NCQ pipelining), which is what the engine's
  computation/I/O overlap has to hide.
"""

from dataclasses import dataclass
from typing import Optional

from repro.sim.stats import StatsCollector

#: Flash page size: SSDs store and access data at 4KB granularity (§5.4.2).
FLASH_PAGE_SIZE = 4096


@dataclass(frozen=True)
class SSDConfig:
    """Performance envelope of one device.

    Defaults model one OCZ Vertex 4 as reported in the paper: ~60K random
    4KB reads per second, with a sequential stream roughly 2.4x faster.
    """

    #: Sustained random 4KB read operations per second.
    max_iops: float = 60_000.0
    #: Sustained large-request read bandwidth in bytes per second.
    seq_bandwidth: float = 560e6
    #: Pipelined per-request completion latency in seconds.
    read_latency: float = 80e-6

    @property
    def page_transfer_time(self) -> float:
        """Seconds to move one flash page at sequential bandwidth."""
        return FLASH_PAGE_SIZE / self.seq_bandwidth

    @property
    def fixed_overhead(self) -> float:
        """Per-request setup time implied by the IOPS limit."""
        overhead = 1.0 / self.max_iops - self.page_transfer_time
        if overhead <= 0.0:
            raise ValueError(
                "max_iops and seq_bandwidth are inconsistent: a one-page "
                "request would have to take non-positive setup time"
            )
        return overhead

    @property
    def random_bandwidth(self) -> float:
        """Bytes per second sustained by back-to-back one-page reads."""
        return self.max_iops * FLASH_PAGE_SIZE


class SSD:
    """One simulated device with a FIFO service queue.

    SAFS deploys a dedicated I/O thread per SSD; this class *is* that
    thread's view of the device.  :meth:`submit` is the only operation —
    writes never happen during computation because the semi-external model
    avoids writing to SSDs (§3, "Minimize write").
    """

    def __init__(
        self,
        config: Optional[SSDConfig] = None,
        stats: Optional[StatsCollector] = None,
        name: str = "ssd0",
    ) -> None:
        self.config = config or SSDConfig()
        self.stats = stats if stats is not None else StatsCollector()
        self.name = name
        self._busy_until = 0.0
        self._busy_time = 0.0

    @property
    def busy_until(self) -> float:
        """Virtual time at which the device drains its current queue."""
        return self._busy_until

    @property
    def busy_time(self) -> float:
        """Total seconds the device has spent servicing requests."""
        return self._busy_time

    def service_time(self, num_pages: int) -> float:
        """Seconds the device is occupied by a request for ``num_pages``."""
        if num_pages <= 0:
            raise ValueError("a read request must cover at least one page")
        cfg = self.config
        return cfg.fixed_overhead + num_pages * cfg.page_transfer_time

    def submit(self, arrival_time: float, num_pages: int) -> float:
        """Enqueue a read of ``num_pages`` pages at ``arrival_time``.

        Returns the virtual completion time.  The device services requests
        in arrival order; completion additionally includes the pipelined
        ``read_latency``.
        """
        if arrival_time < 0.0:
            raise ValueError("arrival_time cannot be negative")
        service = self.service_time(num_pages)
        start = max(arrival_time, self._busy_until)
        self._busy_until = start + service
        self._busy_time += service
        self.stats.add("ssd.requests")
        self.stats.add("ssd.pages_read", num_pages)
        self.stats.add("ssd.bytes_read", num_pages * FLASH_PAGE_SIZE)
        return self._busy_until + self.config.read_latency

    def reset(self) -> None:
        """Clear queue state (not the shared stats) for a fresh run."""
        self._busy_until = 0.0
        self._busy_time = 0.0

    def __repr__(self) -> str:
        return f"SSD(name={self.name!r}, busy_until={self._busy_until:.6f})"
