"""Service-time model for a single commodity SSD.

The paper's array is built from OCZ Vertex 4 drives delivering roughly
60,000 random 4KB reads per second each, with sequential throughput only
2–3x higher than random 4KB throughput — the property that lets FlashGraph
prioritise *reading fewer bytes* over *reading sequentially* (§3).

The model is a single FIFO server with pipelined completion latency:

- a request for ``n`` pages occupies the device for
  ``fixed_overhead + n * page_transfer_time`` seconds,
- ``fixed_overhead`` is derived from the device's IOPS limit, so one-page
  random reads sustain exactly ``max_iops``,
- large merged requests asymptotically reach ``seq_bandwidth``,
- every completion is additionally delayed by ``read_latency`` without
  occupying the server (NCQ pipelining), which is what the engine's
  computation/I/O overlap has to hide.
"""

from dataclasses import dataclass
from typing import Optional

from repro.obs import registry as reg
from repro.sim.faults import DeviceCompletion, FaultPlan
from repro.sim.stats import StatsCollector

#: Flash page size: SSDs store and access data at 4KB granularity (§5.4.2).
FLASH_PAGE_SIZE = 4096


@dataclass(frozen=True)
class SSDConfig:
    """Performance envelope of one device.

    Defaults model one OCZ Vertex 4 as reported in the paper: ~60K random
    4KB reads per second, with a sequential stream roughly 2.4x faster.
    """

    #: Sustained random 4KB read operations per second.
    max_iops: float = 60_000.0
    #: Sustained large-request read bandwidth in bytes per second.
    seq_bandwidth: float = 560e6
    #: Pipelined per-request completion latency in seconds.
    read_latency: float = 80e-6

    @property
    def page_transfer_time(self) -> float:
        """Seconds to move one flash page at sequential bandwidth."""
        return FLASH_PAGE_SIZE / self.seq_bandwidth

    @property
    def fixed_overhead(self) -> float:
        """Per-request setup time implied by the IOPS limit."""
        overhead = 1.0 / self.max_iops - self.page_transfer_time
        if overhead <= 0.0:
            raise ValueError(
                "max_iops and seq_bandwidth are inconsistent: a one-page "
                "request would have to take non-positive setup time"
            )
        return overhead

    @property
    def random_bandwidth(self) -> float:
        """Bytes per second sustained by back-to-back one-page reads."""
        return self.max_iops * FLASH_PAGE_SIZE


class SSD:
    """One simulated device with a FIFO service queue.

    SAFS deploys a dedicated I/O thread per SSD; this class *is* that
    thread's view of the device.  :meth:`submit` is the only operation —
    writes never happen during computation because the semi-external model
    avoids writing to SSDs (§3, "Minimize write").
    """

    def __init__(
        self,
        config: Optional[SSDConfig] = None,
        stats: Optional[StatsCollector] = None,
        name: str = "ssd0",
        fault_plan: Optional[FaultPlan] = None,
        device_index: int = 0,
    ) -> None:
        self.config = config or SSDConfig()
        self.stats = stats if stats is not None else StatsCollector()
        self.name = name
        self.fault_plan = fault_plan
        self.device_index = device_index
        #: Armed observer (see :mod:`repro.obs`); ``None`` keeps the
        #: device on the exact legacy fast path.
        self.obs = None
        #: Busy-time attribution callback ``(device_index, service)``,
        #: fired for every service charge; the serve layer's tenant
        #: accountant uses it to tile ``busy_time`` across tenants
        #: exactly.  ``None`` = no attribution work.
        self.tenant_sink = None
        self._busy_until = 0.0
        self._busy_time = 0.0
        # Monotone attempt ordinal: seeds the deterministic fault coin, so
        # it is part of the device's replay-relevant mutable state and
        # must be cleared by :meth:`reset`.
        self._attempts = 0
        self._stall_time = 0.0

    @property
    def attempts(self) -> int:
        """Attempts accepted so far (ordinal of the next attempt minus 1)."""
        return self._attempts

    @property
    def stall_time(self) -> float:
        """Total seconds arrivals spent stalled in stuck-queue windows."""
        return self._stall_time

    @property
    def busy_until(self) -> float:
        """Virtual time at which the device drains its current queue."""
        return self._busy_until

    @property
    def busy_time(self) -> float:
        """Total seconds the device has spent servicing requests."""
        return self._busy_time

    def service_time(self, num_pages: int) -> float:
        """Seconds the device is occupied by a request for ``num_pages``."""
        if num_pages <= 0:
            raise ValueError("a read request must cover at least one page")
        cfg = self.config
        return cfg.fixed_overhead + num_pages * cfg.page_transfer_time

    def submit(self, arrival_time: float, num_pages: int) -> float:
        """Enqueue a read of ``num_pages`` pages at ``arrival_time``.

        Returns the virtual completion time.  The device services requests
        in arrival order; completion additionally includes the pipelined
        ``read_latency``.  Only valid on a fault-free device — callers
        that attached a :class:`~repro.sim.faults.FaultPlan` must use
        :meth:`submit_request` and handle error completions.
        """
        outcome = self.submit_request(arrival_time, num_pages)
        if not outcome.ok:
            raise RuntimeError(
                f"{self.name}: submit() cannot surface a "
                f"{outcome.error!r} fault; use submit_request()"
            )
        return outcome.time

    def submit_request(self, arrival_time: float, num_pages: int) -> DeviceCompletion:
        """Enqueue a read and return its :class:`DeviceCompletion`.

        The fault-aware twin of :meth:`submit`: a dead device rejects the
        attempt immediately (no service charged); stuck-queue windows
        delay the effective arrival; latency spikes inflate the service
        time; transient-error windows complete the attempt — charging its
        full service — but flag the data bad so the SAFS layer retries.

        Without a fault plan the arithmetic is exactly the historical
        happy path, bit for bit.
        """
        if arrival_time < 0.0:
            raise ValueError("arrival_time cannot be negative")
        plan = self.fault_plan
        if plan is None:
            service = self.service_time(num_pages)
            start = max(arrival_time, self._busy_until)
            self._busy_until = start + service
            self._busy_time += service
            if self.tenant_sink is not None:
                self.tenant_sink(self.device_index, service)
            self.stats.add(reg.SSD_REQUESTS)
            self.stats.add(reg.SSD_PAGES_READ, num_pages)
            self.stats.add(reg.SSD_BYTES_READ, num_pages * FLASH_PAGE_SIZE)
            done = self._busy_until + self.config.read_latency
            if self.obs is not None:
                self.obs.device_span(
                    self, arrival_time, start, service, num_pages, "ok", done
                )
            return DeviceCompletion(
                done,
                True,
                None,
                service,
                self.device_index,
            )

        device = self.device_index
        if plan.is_dead(device, arrival_time):
            self.stats.add(reg.FAULTS_DEAD_REQUESTS)
            if self.obs is not None:
                self.obs.device_span(
                    self, arrival_time, arrival_time, 0.0, num_pages,
                    "dead", arrival_time,
                )
            return DeviceCompletion(arrival_time, False, "dead", 0.0, device)
        effective_arrival = plan.stall_release(device, arrival_time)
        if effective_arrival > arrival_time:
            stalled = effective_arrival - arrival_time
            self._stall_time += stalled
            self.stats.add(reg.FAULTS_STALLED_REQUESTS)
            self.stats.add(reg.FAULTS_STALL_TIME, stalled)
        self._attempts += 1
        ordinal = self._attempts
        service = self.service_time(num_pages)
        start = max(effective_arrival, self._busy_until)
        factor = plan.service_factor(device, start)
        if factor != 1.0:
            service *= factor
            self.stats.add(reg.FAULTS_SPIKED_REQUESTS)
        self._busy_until = start + service
        self._busy_time += service
        if self.tenant_sink is not None:
            self.tenant_sink(self.device_index, service)
        self.stats.add(reg.SSD_REQUESTS)
        self.stats.add(reg.SSD_PAGES_READ, num_pages)
        self.stats.add(reg.SSD_BYTES_READ, num_pages * FLASH_PAGE_SIZE)
        done = self._busy_until + self.config.read_latency
        if plan.read_error(device, ordinal, start):
            self.stats.add(reg.FAULTS_TRANSIENT_ERRORS)
            if self.obs is not None:
                self.obs.device_span(
                    self, arrival_time, start, service, num_pages,
                    "transient", done,
                )
            return DeviceCompletion(done, False, "transient", service, device)
        if self.obs is not None:
            self.obs.device_span(
                self, arrival_time, start, service, num_pages, "ok", done
            )
        return DeviceCompletion(done, True, None, service, device)

    def media_rotted(self, first_page: int, num_pages: int, time: float) -> int:
        """Rotted flash pages among ``[first_page, first_page+num_pages)``.

        The device's view of its own media: silent bit rot the drive's
        ECC misses.  The device still reports the read as *good* — only
        the SAFS integrity layer's per-page checksums catch the damage —
        so this is queried by the scheduler at completion time, never by
        :meth:`submit_request` itself.
        """
        plan = self.fault_plan
        if plan is None:
            return 0
        return plan.corrupted_in_run(self.device_index, first_page, num_pages, time)

    def export_state(self) -> dict:
        """Every replay-relevant mutable field, for checkpointing."""
        return {
            "busy_until": self._busy_until,
            "busy_time": self._busy_time,
            "attempts": self._attempts,
            "stall_time": self._stall_time,
        }

    def restore_state(self, state: dict) -> None:
        """Reinstate :meth:`export_state` output bit for bit."""
        self._busy_until = float(state["busy_until"])
        self._busy_time = float(state["busy_time"])
        self._attempts = int(state["attempts"])
        self._stall_time = float(state["stall_time"])

    def reset(self) -> None:
        """Clear all mutable per-run state (not the shared stats).

        Every field :meth:`submit_request` mutates is reset — including
        the attempt ordinal that seeds the fault coin, so a reset device
        replays a fault plan exactly like a freshly built one.
        """
        self._busy_until = 0.0
        self._busy_time = 0.0
        self._attempts = 0
        self._stall_time = 0.0

    def __repr__(self) -> str:
        return f"SSD(name={self.name!r}, busy_until={self._busy_until:.6f})"
