"""Device-model microbenchmarks (a fio for the simulator).

These routines drive the simulated SSD array exactly the way a storage
engineer profiles real hardware — random-read IOPS versus request size,
sequential bandwidth, completion latency — and report the measured curve.
They exist to *verify the model against its own spec*: the tests assert
the measured numbers land on the configured envelope (60K IOPS/device,
the 1:2.4 random:sequential ratio), and ``docs/cost_model.md`` points
here for the receipts.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.ssd import FLASH_PAGE_SIZE
from repro.sim.ssd_array import SSDArray, SSDArrayConfig


@dataclass(frozen=True)
class ProfilePoint:
    """One measured point of the device profile."""

    request_pages: int
    iops: float
    bandwidth: float
    mean_latency: float


def profile_random_reads(
    array: Optional[SSDArray] = None,
    request_pages_sweep: tuple = (1, 2, 4, 8, 16, 64, 256),
    requests_per_point: int = 2000,
) -> List[ProfilePoint]:
    """Measure the array's read curve across request sizes.

    Requests are spread across the page space so every device participates
    — the access pattern of a well-merged FlashGraph iteration.
    """
    if requests_per_point <= 0:
        raise ValueError("need at least one request per point")
    points: List[ProfilePoint] = []
    for pages in request_pages_sweep:
        if pages <= 0:
            raise ValueError("request sizes must be positive")
        device = array or SSDArray(SSDArrayConfig())
        device.reset()
        # Consecutive requests start on consecutive stripes, so they
        # rotate across the devices instead of aliasing onto one.
        stripe = device.config.stripe_pages
        stripes_per_request = max(1, (pages + stripe - 1) // stripe)
        stride = stripes_per_request * stripe
        completions = []
        for i in range(requests_per_point):
            first = (i * stride) % (1 << 30)
            completions.append(device.submit(0.0, first, pages))
        drain = device.drain_time()
        iops = requests_per_point / drain
        bandwidth = iops * pages * FLASH_PAGE_SIZE
        mean_latency = sum(completions) / len(completions)
        points.append(ProfilePoint(pages, iops, bandwidth, mean_latency))
        device.reset()
    return points


def measured_envelope(points: List[ProfilePoint]) -> Dict[str, float]:
    """Summary figures a datasheet would quote."""
    if not points:
        raise ValueError("no profile points")
    by_pages = {p.request_pages: p for p in points}
    smallest = by_pages[min(by_pages)]
    largest = by_pages[max(by_pages)]
    return {
        "random_4k_iops": smallest.iops,
        "random_4k_bandwidth": smallest.bandwidth,
        "sequential_bandwidth": largest.bandwidth,
        "seq_to_random_ratio": largest.bandwidth / smallest.bandwidth,
    }


def expected_envelope(
    config: Optional[SSDArrayConfig] = None,
) -> Dict[str, float]:
    """The configured spec the measurement must land on."""
    config = config or SSDArrayConfig()
    return {
        "random_4k_iops": config.max_iops,
        "random_4k_bandwidth": config.max_iops * FLASH_PAGE_SIZE,
        "sequential_bandwidth": config.max_bandwidth,
        "seq_to_random_ratio": (
            config.ssd_config.seq_bandwidth / config.ssd_config.random_bandwidth
        ),
    }
