"""A striped array of simulated SSDs.

The paper's testbed attaches 15 SSDs that together deliver ~900,000 reads
per second.  SAFS stripes file pages across the devices and drives each one
from a dedicated I/O thread; here each :class:`~repro.sim.ssd.SSD` carries
its own queue, and a request that spans a stripe boundary is split into
per-device sub-requests whose completion is the latest sub-completion.

With a :class:`~repro.sim.parity.ParityConfig` attached the array lays
pages out in rotating-parity rows instead of plain round-robin: a lost
data run (dead device, rotted page) is reconstructed from the row's
surviving peers at full DES cost, and a background scrubber rebuilds a
declared-dead device onto a hot spare while reads keep flowing.  Parity
is strictly opt-in — without it every placement and counter matches the
historical array bit for bit.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs import registry as reg
from repro.sim.faults import DeviceCompletion, FaultPlan
from repro.sim.health import HealthMonitor
from repro.sim.parity import ParityConfig, ParityLayout, RebuildState
from repro.sim.ssd import FLASH_PAGE_SIZE, SSD, SSDConfig
from repro.sim.stats import StatsCollector


@dataclass(frozen=True)
class SSDArrayConfig:
    """Array geometry.  Defaults match the paper's 15-SSD chassis."""

    #: Number of devices in the array.
    num_ssds: int = 15
    #: Stripe unit in flash pages (64KB stripes by default).
    stripe_pages: int = 16
    #: Per-device performance envelope.
    ssd_config: SSDConfig = SSDConfig()

    @property
    def max_iops(self) -> float:
        """Aggregate random-read IOPS (paper: ~900K)."""
        return self.num_ssds * self.ssd_config.max_iops

    @property
    def max_bandwidth(self) -> float:
        """Aggregate sequential read bandwidth in bytes per second."""
        return self.num_ssds * self.ssd_config.seq_bandwidth


class SSDArray:
    """Pages striped round-robin (by stripe unit) over the devices."""

    def __init__(
        self,
        config: Optional[SSDArrayConfig] = None,
        stats: Optional[StatsCollector] = None,
        device_configs: Optional[List[SSDConfig]] = None,
        fault_plan: Optional[FaultPlan] = None,
        parity: Optional[ParityConfig] = None,
    ) -> None:
        """``device_configs`` overrides the per-device envelope (one entry
        per device) — used to model stragglers: a degraded drive slows only
        the requests striped onto it, since SAFS drives each device from
        its own I/O thread and queue.  ``fault_plan`` injects scheduled
        faults into every device (see :mod:`repro.sim.faults`); ``parity``
        opts the array into rotating-parity placement with hot spares
        (see :mod:`repro.sim.parity`)."""
        self.config = config or SSDArrayConfig()
        #: Armed observer (see :mod:`repro.obs`); ``None`` = no tracing.
        self.obs = None
        if self.config.num_ssds <= 0:
            raise ValueError("an SSD array needs at least one device")
        if self.config.stripe_pages <= 0:
            raise ValueError("the stripe unit must be at least one page")
        if device_configs is not None and len(device_configs) != self.config.num_ssds:
            raise ValueError("device_configs must have one entry per device")
        self.stats = stats if stats is not None else StatsCollector()
        self.fault_plan = fault_plan
        self.parity = parity
        self.layout: Optional[ParityLayout] = None
        if parity is not None:
            self.layout = ParityLayout(self.config.num_ssds, self.config.stripe_pages)
        #: Health monitor attached by the SAFS layer (see ``sim/health.py``);
        #: consulted by :meth:`reroute_target` so degraded reads skip
        #: quarantined devices, not just dead ones.
        self.health: Optional[HealthMonitor] = None
        configs = device_configs or [self.config.ssd_config] * self.config.num_ssds
        self._ssds: List[SSD] = [
            SSD(cfg, self.stats, name=f"ssd{i}", fault_plan=fault_plan, device_index=i)
            for i, cfg in enumerate(configs)
        ]
        num_spares = parity.hot_spares if parity is not None else 0
        self._spares: List[SSD] = [
            SSD(
                self.config.ssd_config,
                self.stats,
                name=f"spare{j}",
                fault_plan=fault_plan,
                device_index=self.config.num_ssds + j,
            )
            for j in range(num_spares)
        ]
        self._next_spare = 0
        #: Flash pages of data laid out on the array (SAFS reports each
        #: registered file through :meth:`note_capacity`); the rebuild
        #: total is derived from it.
        self._capacity_pages = 0
        self._rebuilds: Dict[int, RebuildState] = {}

    @property
    def ssds(self) -> Tuple[SSD, ...]:
        return tuple(self._ssds)

    @property
    def spares(self) -> Tuple[SSD, ...]:
        """Hot-spare devices (empty without a parity config)."""
        return tuple(self._spares)

    def device(self, index: int) -> SSD:
        """The device (or hot spare) with array index ``index``."""
        if index < self.config.num_ssds:
            return self._ssds[index]
        return self._spares[index - self.config.num_ssds]

    def device_for_page(self, page_no: int) -> int:
        """Index of the device that stores ``page_no``."""
        if page_no < 0:
            raise ValueError("page numbers are non-negative")
        if self.layout is not None:
            return self.layout.device_for_page(page_no)
        return (page_no // self.config.stripe_pages) % self.config.num_ssds

    def split_extent(self, first_page: int, num_pages: int) -> List[Tuple[int, int]]:
        """Split a page extent into maximal per-device runs.

        Returns ``(device_index, run_pages)`` tuples in page order.  Runs on
        the same device separated by other devices' stripes are *not*
        coalesced: each stripe crossing is a distinct sub-request, which is
        exactly why FlashGraph's conservative merging only joins requests on
        the same or adjacent pages (§3.6).
        """
        return [
            (device, run_pages)
            for device, _, run_pages in self.split_extent_runs(first_page, num_pages)
        ]

    def split_extent_runs(
        self, first_page: int, num_pages: int
    ) -> List[Tuple[int, int, int]]:
        """Like :meth:`split_extent`, keeping each run's page identity.

        Returns ``(device_index, run_first_page, run_pages)`` tuples: the
        fault-recovering dispatch path needs the page numbers to check
        silent rot and to locate the parity row of a failed run.  Runs
        never cross a stripe-unit boundary, so each one lies in exactly
        one parity row.
        """
        if num_pages <= 0:
            raise ValueError("an extent must cover at least one page")
        runs: List[Tuple[int, int, int]] = []
        page = first_page
        remaining = num_pages
        stripe = self.config.stripe_pages
        while remaining > 0:
            device = self.device_for_page(page)
            stripe_end = (page // stripe + 1) * stripe
            run = min(remaining, stripe_end - page)
            runs.append((device, page, run))
            page += run
            remaining -= run
        return runs

    def submit(self, arrival_time: float, first_page: int, num_pages: int) -> float:
        """Read ``num_pages`` pages starting at ``first_page``.

        Each stripe-aligned run goes to its owning device's queue; the
        request completes when the slowest run completes.
        """
        completion = arrival_time
        for device, run_pages in self.split_extent(first_page, num_pages):
            done = self._ssds[device].submit(arrival_time, run_pages)
            if done > completion:
                completion = done
        self.stats.add(reg.ARRAY_REQUESTS)
        self.stats.add(reg.ARRAY_PAGES_READ, num_pages)
        self.stats.add(reg.ARRAY_BYTES_READ, num_pages * FLASH_PAGE_SIZE)
        return completion

    def submit_run(
        self, device: int, arrival_time: float, num_pages: int
    ) -> DeviceCompletion:
        """Submit one per-device run and return its outcome.

        The fault-aware building block the SAFS scheduler drives: it
        touches exactly one device queue and reports errors instead of
        raising, so the caller can retry, back off or re-route.
        ``device`` may name a hot spare (indices past ``num_ssds``).
        """
        return self.device(device).submit_request(arrival_time, num_pages)

    def count_extent(self, num_pages: int) -> None:
        """Record the array-level counters for one submitted extent.

        Split out of :meth:`submit` so the fault-recovering dispatch path
        can drive runs individually while keeping the counter stream
        identical to the happy path.
        """
        self.stats.add(reg.ARRAY_REQUESTS)
        self.stats.add(reg.ARRAY_PAGES_READ, num_pages)
        self.stats.add(reg.ARRAY_BYTES_READ, num_pages * FLASH_PAGE_SIZE)

    # ------------------------------------------------------------------
    # Degraded mode: reroute, parity reconstruction, rebuild
    # ------------------------------------------------------------------

    def reroute_target(self, device: int, time: float) -> Optional[int]:
        """The surviving device that stands in for unavailable ``device``.

        Degraded mode models a replica read: the striped data of an
        unavailable device is served by the next *usable* device in ring
        order (the mirror placement of a declustered RAID).  Usable means
        not dead under the fault plan **and** not quarantined or declared
        failed by the health monitor — a quarantined device must not
        receive rerouted traffic, or the reroute defeats the quarantine.
        Returns ``None`` when no device is usable at ``time``.
        """
        plan = self.fault_plan
        health = self.health
        num = self.config.num_ssds
        for step in range(1, num):
            candidate = (device + step) % num
            if plan is not None and plan.is_dead(candidate, time):
                continue
            if health is not None and health.avoid(candidate, time):
                continue
            return candidate
        return None

    def note_capacity(self, num_pages: int) -> None:
        """Record ``num_pages`` of flash laid out on the array.

        The SAFS scheduler reports every registered file; the running
        total sizes the scrubber's rebuild (every device holds exactly
        one stripe unit per parity row, data or parity, so per-device
        capacity is ``rows * stripe_pages``).
        """
        if num_pages < 0:
            raise ValueError("capacity cannot shrink")
        self._capacity_pages += num_pages

    def rebuild_for(self, device: int) -> Optional[RebuildState]:
        """The in-flight (or finished) rebuild of ``device``, if any."""
        return self._rebuilds.get(device)

    def start_rebuild(self, device: int, time: float) -> Optional[RebuildState]:
        """Begin scrubbing dead ``device`` onto the next hot spare.

        Idempotent: a device already being rebuilt returns its existing
        state.  Returns ``None`` when the array has no parity layout or
        no spare left — degraded reads then stay degraded forever.
        """
        existing = self._rebuilds.get(device)
        if existing is not None:
            return existing
        layout = self.layout
        if layout is None or self.parity is None:
            return None
        if self._next_spare >= len(self._spares):
            return None
        spare_index = self.config.num_ssds + self._next_spare
        self._next_spare += 1
        rows = layout.rows_for_pages(self._capacity_pages)
        rate = (
            self.parity.rebuild_rate_fraction
            * self.config.ssd_config.seq_bandwidth
            / FLASH_PAGE_SIZE
        )
        rebuild = RebuildState(
            device=device,
            spare=spare_index,
            start_time=time,
            total_pages=rows * self.config.stripe_pages,
            rate_pages_per_s=rate,
            stripe_pages=self.config.stripe_pages,
            peer_reads_per_page=self.config.num_ssds - 1,
        )
        self._rebuilds[device] = rebuild
        self.stats.add(reg.SCRUB_REBUILDS_STARTED)
        return rebuild

    def serving_device(self, device: int, first_page: int, time: float) -> int:
        """The device that actually serves a run of ``device`` at ``time``.

        Once the scrubber has rebuilt the run's parity row, the hot spare
        serves it at normal cost; until then the original device index is
        returned (and the caller recovers via reconstruction if it is
        unavailable).  Observing progress also charges the scrub I/O
        accrued so far.
        """
        if self.layout is None:
            return device
        return self._serving_for_row(device, self.layout.row_of(first_page), time)

    def _serving_for_row(self, device: int, row: int, time: float) -> int:
        rebuild = self._rebuilds.get(device)
        if rebuild is None:
            return device
        rebuild.charge(self.stats, time)
        if rebuild.row_covered(row, time):
            return rebuild.spare
        return device

    def reconstruct_run(
        self, device: int, first_page: int, num_pages: int, time: float
    ) -> DeviceCompletion:
        """Serve a lost data run by reading the parity row's survivors.

        Reads the row's other ``N - 2`` data units plus the parity unit,
        each charged to its own device queue (degraded reads are never
        free); the reconstruction completes when the slowest peer read
        does.  Outcomes:

        - ``ok`` — every peer read succeeded; the XOR recovers the run.
        - ``error="double_fault"`` — a peer is dead, rotted or sick too:
          two losses in one row exceed single parity, reported loudly.
        - ``error="transient"`` — a peer read failed transiently; the
          whole reconstruction is retryable with backoff.
        """
        obs = self.obs
        if obs is None:
            return self._reconstruct_run(device, first_page, num_pages, time)
        # Peer reads issued inside the section are traced as recovery
        # work, and the outcome lands on the in-flight io span.
        obs.recovery_begin()
        try:
            outcome = self._reconstruct_run(device, first_page, num_pages, time)
        finally:
            obs.recovery_end()
        if outcome.ok:
            obs.io_event(
                "reconstructed", outcome.time, device=device, pages=num_pages
            )
        else:
            obs.io_event(
                "reconstruction_failed", outcome.time,
                device=device, error=outcome.error,
            )
        return outcome

    def _reconstruct_run(
        self, device: int, first_page: int, num_pages: int, time: float
    ) -> DeviceCompletion:
        layout = self.layout
        if layout is None:
            raise RuntimeError("reconstruction requires a parity layout")
        plan = self.fault_plan
        health = self.health
        completion = time
        row = layout.row_of(first_page)
        peers = layout.peers(first_page, num_pages)
        for peer, peer_first, peer_pages in peers:
            target = self._serving_for_row(peer, row, time)
            if health is not None and health.avoid(target, time):
                # A sick peer is temporarily unusable: the row cannot be
                # reconstructed right now, but may be after the window.
                self.stats.add(reg.PARITY_PEER_UNAVAILABLE)
                return DeviceCompletion(time, False, "transient", 0.0, device)
            if plan is not None and target == peer:
                # Media checks apply to the peer's own flash; a rebuilt
                # spare serves fresh copies, so it skips them.
                if plan.is_dead(target, time):
                    self.stats.add(reg.PARITY_DOUBLE_FAULTS)
                    return DeviceCompletion(time, False, "double_fault", 0.0, device)
                if plan.corrupted_in_run(peer, peer_first, peer_pages, time):
                    # Rot is persistent — a rotted peer block makes this
                    # row's loss permanent, not retryable.
                    self.stats.add(reg.PARITY_DOUBLE_FAULTS)
                    return DeviceCompletion(time, False, "double_fault", 0.0, device)
            outcome = self.device(target).submit_request(time, peer_pages)
            if not outcome.ok:
                if outcome.error == "dead":
                    self.stats.add(reg.PARITY_DOUBLE_FAULTS)
                    return DeviceCompletion(
                        outcome.time, False, "double_fault", 0.0, device
                    )
                return DeviceCompletion(
                    outcome.time, False, "transient", 0.0, device
                )
            if outcome.time > completion:
                completion = outcome.time
        self.stats.add(reg.PARITY_RECONSTRUCTIONS)
        self.stats.add(reg.PARITY_PEER_READS, len(peers))
        self.stats.add(reg.PARITY_PAGES_RECONSTRUCTED, num_pages)
        return DeviceCompletion(completion, True, None, 0.0, device)

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    def busy_time(self) -> float:
        """Total device-seconds spent servicing requests across the array."""
        return sum(ssd.busy_time for ssd in self._ssds) + sum(
            spare.busy_time for spare in self._spares
        )

    def drain_time(self) -> float:
        """Virtual time at which every device queue is empty."""
        drain = max(ssd.busy_until for ssd in self._ssds)
        for spare in self._spares:
            if spare.busy_until > drain:
                drain = spare.busy_until
        return drain

    def utilization(self, wall_time: float) -> float:
        """Fraction of aggregate device time busy over ``wall_time``."""
        if wall_time <= 0.0:
            return 0.0
        return self.busy_time() / (wall_time * self.config.num_ssds)

    def export_state(self) -> Dict:
        """Every replay-relevant mutable field, for checkpointing."""
        return {
            "devices": [ssd.export_state() for ssd in self._ssds],
            "spares": [spare.export_state() for spare in self._spares],
            "next_spare": self._next_spare,
            "capacity_pages": self._capacity_pages,
            "rebuilds": {
                str(device): rebuild.export_state()
                for device, rebuild in self._rebuilds.items()
            },
        }

    def restore_state(self, state: Dict) -> None:
        """Reinstate :meth:`export_state` output bit for bit."""
        devices = state["devices"]
        spares = state["spares"]
        if len(devices) != len(self._ssds) or len(spares) != len(self._spares):
            raise ValueError("array state does not match this array's geometry")
        for ssd, ssd_state in zip(self._ssds, devices):
            ssd.restore_state(ssd_state)
        for spare, spare_state in zip(self._spares, spares):
            spare.restore_state(spare_state)
        self._next_spare = int(state["next_spare"])
        self._capacity_pages = int(state["capacity_pages"])
        self._rebuilds = {
            int(device): RebuildState.from_state(rebuild_state)
            for device, rebuild_state in state["rebuilds"].items()
        }

    def reset(self) -> None:
        """Clear all device queues and rebuild state (not the shared stats
        or the registered capacity, which belongs to the file layout)."""
        for ssd in self._ssds:
            ssd.reset()
        for spare in self._spares:
            spare.reset()
        self._next_spare = 0
        self._rebuilds = {}

    def __repr__(self) -> str:
        cfg = self.config
        parity = ", parity" if self.parity is not None else ""
        return f"SSDArray(num_ssds={cfg.num_ssds}, stripe_pages={cfg.stripe_pages}{parity})"
