"""A striped array of simulated SSDs.

The paper's testbed attaches 15 SSDs that together deliver ~900,000 reads
per second.  SAFS stripes file pages across the devices and drives each one
from a dedicated I/O thread; here each :class:`~repro.sim.ssd.SSD` carries
its own queue, and a request that spans a stripe boundary is split into
per-device sub-requests whose completion is the latest sub-completion.
"""

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.sim.faults import DeviceCompletion, FaultPlan
from repro.sim.ssd import FLASH_PAGE_SIZE, SSD, SSDConfig
from repro.sim.stats import StatsCollector


@dataclass(frozen=True)
class SSDArrayConfig:
    """Array geometry.  Defaults match the paper's 15-SSD chassis."""

    #: Number of devices in the array.
    num_ssds: int = 15
    #: Stripe unit in flash pages (64KB stripes by default).
    stripe_pages: int = 16
    #: Per-device performance envelope.
    ssd_config: SSDConfig = SSDConfig()

    @property
    def max_iops(self) -> float:
        """Aggregate random-read IOPS (paper: ~900K)."""
        return self.num_ssds * self.ssd_config.max_iops

    @property
    def max_bandwidth(self) -> float:
        """Aggregate sequential read bandwidth in bytes per second."""
        return self.num_ssds * self.ssd_config.seq_bandwidth


class SSDArray:
    """Pages striped round-robin (by stripe unit) over the devices."""

    def __init__(
        self,
        config: Optional[SSDArrayConfig] = None,
        stats: Optional[StatsCollector] = None,
        device_configs: Optional[List[SSDConfig]] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        """``device_configs`` overrides the per-device envelope (one entry
        per device) — used to model stragglers: a degraded drive slows only
        the requests striped onto it, since SAFS drives each device from
        its own I/O thread and queue.  ``fault_plan`` injects scheduled
        faults into every device (see :mod:`repro.sim.faults`)."""
        self.config = config or SSDArrayConfig()
        if self.config.num_ssds <= 0:
            raise ValueError("an SSD array needs at least one device")
        if self.config.stripe_pages <= 0:
            raise ValueError("the stripe unit must be at least one page")
        if device_configs is not None and len(device_configs) != self.config.num_ssds:
            raise ValueError("device_configs must have one entry per device")
        self.stats = stats if stats is not None else StatsCollector()
        self.fault_plan = fault_plan
        configs = device_configs or [self.config.ssd_config] * self.config.num_ssds
        self._ssds: List[SSD] = [
            SSD(cfg, self.stats, name=f"ssd{i}", fault_plan=fault_plan, device_index=i)
            for i, cfg in enumerate(configs)
        ]

    @property
    def ssds(self) -> Tuple[SSD, ...]:
        return tuple(self._ssds)

    def device_for_page(self, page_no: int) -> int:
        """Index of the device that stores ``page_no``."""
        if page_no < 0:
            raise ValueError("page numbers are non-negative")
        return (page_no // self.config.stripe_pages) % self.config.num_ssds

    def split_extent(self, first_page: int, num_pages: int) -> List[Tuple[int, int]]:
        """Split a page extent into maximal per-device runs.

        Returns ``(device_index, run_pages)`` tuples in page order.  Runs on
        the same device separated by other devices' stripes are *not*
        coalesced: each stripe crossing is a distinct sub-request, which is
        exactly why FlashGraph's conservative merging only joins requests on
        the same or adjacent pages (§3.6).
        """
        if num_pages <= 0:
            raise ValueError("an extent must cover at least one page")
        runs: List[Tuple[int, int]] = []
        page = first_page
        remaining = num_pages
        stripe = self.config.stripe_pages
        while remaining > 0:
            device = self.device_for_page(page)
            stripe_end = (page // stripe + 1) * stripe
            run = min(remaining, stripe_end - page)
            runs.append((device, run))
            page += run
            remaining -= run
        return runs

    def submit(self, arrival_time: float, first_page: int, num_pages: int) -> float:
        """Read ``num_pages`` pages starting at ``first_page``.

        Each stripe-aligned run goes to its owning device's queue; the
        request completes when the slowest run completes.
        """
        completion = arrival_time
        for device, run_pages in self.split_extent(first_page, num_pages):
            done = self._ssds[device].submit(arrival_time, run_pages)
            if done > completion:
                completion = done
        self.stats.add("array.requests")
        self.stats.add("array.pages_read", num_pages)
        self.stats.add("array.bytes_read", num_pages * FLASH_PAGE_SIZE)
        return completion

    def submit_run(
        self, device: int, arrival_time: float, num_pages: int
    ) -> DeviceCompletion:
        """Submit one per-device run and return its outcome.

        The fault-aware building block the SAFS scheduler drives: it
        touches exactly one device queue and reports errors instead of
        raising, so the caller can retry, back off or re-route.
        """
        return self._ssds[device].submit_request(arrival_time, num_pages)

    def count_extent(self, num_pages: int) -> None:
        """Record the array-level counters for one submitted extent.

        Split out of :meth:`submit` so the fault-recovering dispatch path
        can drive runs individually while keeping the counter stream
        identical to the happy path.
        """
        self.stats.add("array.requests")
        self.stats.add("array.pages_read", num_pages)
        self.stats.add("array.bytes_read", num_pages * FLASH_PAGE_SIZE)

    def reroute_target(self, device: int, time: float) -> Optional[int]:
        """The surviving device that stands in for dead ``device``.

        Degraded mode models a replica read: the striped data of a dead
        device is served by the next alive device in ring order (the
        mirror placement of a declustered RAID).  Returns ``None`` when
        every device is dead at ``time``.
        """
        plan = self.fault_plan
        num = self.config.num_ssds
        for step in range(1, num):
            candidate = (device + step) % num
            if plan is None or not plan.is_dead(candidate, time):
                return candidate
        return None

    def busy_time(self) -> float:
        """Total device-seconds spent servicing requests across the array."""
        return sum(ssd.busy_time for ssd in self._ssds)

    def drain_time(self) -> float:
        """Virtual time at which every device queue is empty."""
        return max(ssd.busy_until for ssd in self._ssds)

    def utilization(self, wall_time: float) -> float:
        """Fraction of aggregate device time busy over ``wall_time``."""
        if wall_time <= 0.0:
            return 0.0
        return self.busy_time() / (wall_time * self.config.num_ssds)

    def reset(self) -> None:
        """Clear all device queues (not the shared stats)."""
        for ssd in self._ssds:
            ssd.reset()

    def __repr__(self) -> str:
        cfg = self.config
        return f"SSDArray(num_ssds={cfg.num_ssds}, stripe_pages={cfg.stripe_pages})"
