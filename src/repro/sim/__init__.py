"""Discrete-event simulation substrate.

FlashGraph's evaluation hardware (a 4-socket NUMA Xeon with 15 SSDs behind
three HBAs) cannot be reproduced under CPython, so every component in this
package models *time* while the rest of the library computes *results* for
real.  The engine executes genuine vertex programs over genuine bytes; only
the service times of CPU work and SSD reads come from the calibrated models
here.

Public surface:

- :class:`~repro.sim.clock.VirtualClock` and
  :class:`~repro.sim.clock.EventQueue` — virtual-time bookkeeping.
- :class:`~repro.sim.cost_model.CostModel` — calibrated per-operation CPU
  costs and machine geometry (32 worker threads, as in the paper).
- :class:`~repro.sim.ssd.SSD` — a single device with an IOPS-limited service
  model whose random:sequential throughput ratio matches commodity SSDs.
- :class:`~repro.sim.ssd_array.SSDArray` — pages striped over many devices,
  one queue per device (SAFS's dedicated per-SSD I/O threads).
- :class:`~repro.sim.stats.StatsCollector` — counters shared by every layer.
- :class:`~repro.sim.faults.FaultPlan` and
  :class:`~repro.sim.faults.FaultPolicy` — deterministic, seeded fault
  injection for the devices and the recovery policy SAFS applies
  (see ``docs/fault_model.md``).
- :class:`~repro.sim.parity.ParityConfig` and
  :class:`~repro.sim.health.HealthMonitor` — rotating-parity striping
  with spare rebuild, and error-budget device quarantine
  (see ``docs/recovery.md``).
"""

from repro.sim.clock import EventQueue, VirtualClock
from repro.sim.cost_model import CostModel
from repro.sim.faults import (
    DeviceCompletion,
    DeviceFailure,
    FaultPlan,
    FaultPolicy,
    LatencySpike,
    SilentCorruption,
    StuckQueue,
    TransientErrors,
    UnrecoverableIOError,
    default_chaos_plan,
    fault_coin,
)
from repro.sim.health import HealthMonitor, HealthPolicy
from repro.sim.parity import (
    ParityConfig,
    ParityLayout,
    RebuildState,
    reconstruct_block,
    xor_parity,
)
from repro.sim.ssd import SSD, SSDConfig
from repro.sim.ssd_array import SSDArray, SSDArrayConfig
from repro.sim.calibration import (
    ProfilePoint,
    expected_envelope,
    measured_envelope,
    profile_random_reads,
)
from repro.sim.stats import StatsCollector

__all__ = [
    "EventQueue",
    "VirtualClock",
    "CostModel",
    "SSD",
    "SSDConfig",
    "SSDArray",
    "SSDArrayConfig",
    "StatsCollector",
    "ProfilePoint",
    "expected_envelope",
    "measured_envelope",
    "profile_random_reads",
    "DeviceCompletion",
    "DeviceFailure",
    "FaultPlan",
    "FaultPolicy",
    "LatencySpike",
    "SilentCorruption",
    "StuckQueue",
    "TransientErrors",
    "UnrecoverableIOError",
    "default_chaos_plan",
    "fault_coin",
    "HealthMonitor",
    "HealthPolicy",
    "ParityConfig",
    "ParityLayout",
    "RebuildState",
    "reconstruct_block",
    "xor_parity",
]
