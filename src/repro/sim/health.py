"""Device health monitoring with an error budget.

A 15-SSD array rarely fails cleanly: before a device dies it *flaps* —
bursts of transient errors and checksum failures that would otherwise
burn the I/O scheduler's whole retry budget on a drive that keeps
lying.  The health monitor watches per-device error arrivals and, once a
device exceeds its error budget within a sliding window, **quarantines**
it for a fixed interval: the scheduler routes around it (replica reads
or parity reconstruction) without charging the sick device's queue.  A
device that keeps tripping quarantine is **declared failed** — treated
exactly like a fault-plan death, including triggering a parity rebuild
onto a hot spare.

Everything here is deterministic: decisions depend only on the recorded
error timestamps (themselves deterministic under a seeded
:class:`~repro.sim.faults.FaultPlan`) and the policy constants, and the
full monitor state is exportable for checkpointing.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional

import math


@dataclass(frozen=True)
class HealthPolicy:
    """When a flapping device gets benched.

    The defaults are tuned to the simulation's timescale (whole runs are
    tens of milliseconds of virtual time): three errors within 10ms trip
    a 50ms quarantine, and a third trip declares the device failed.
    """

    #: Errors within ``window`` that trip a quarantine.
    error_budget: int = 3
    #: Sliding-window length in simulated seconds.
    window: float = 0.010
    #: Quarantine duration in simulated seconds.
    quarantine: float = 0.050
    #: Quarantine trips after which the device is declared failed.
    max_quarantines: int = 3

    def __post_init__(self) -> None:
        if self.error_budget < 1:
            raise ValueError("the error budget must allow at least one error")
        if self.window <= 0.0:
            raise ValueError("the error window must be positive")
        if self.quarantine <= 0.0:
            raise ValueError("the quarantine interval must be positive")
        if self.max_quarantines < 1:
            raise ValueError("max_quarantines must be at least 1")


class HealthMonitor:
    """Per-device error budgets, quarantine windows and failure declaration."""

    def __init__(self, policy: HealthPolicy, num_devices: int) -> None:
        if num_devices <= 0:
            raise ValueError("a health monitor needs at least one device")
        self.policy = policy
        self.num_devices = num_devices
        self._errors: List[List[float]] = [[] for _ in range(num_devices)]
        self._quarantined_until: List[float] = [-math.inf] * num_devices
        self._trips: List[int] = [0] * num_devices
        self._failed: List[bool] = [False] * num_devices

    def record_error(self, device: int, time: float) -> Optional[str]:
        """Record one device error; returns the state change it caused.

        ``None`` when the budget still holds, ``"quarantined"`` when this
        error tripped a quarantine window, ``"failed"`` when the trip was
        one too many and the device is declared failed for good.
        """
        if not 0 <= device < self.num_devices:
            return None
        if self._failed[device]:
            return None
        errors = self._errors[device]
        horizon = time - self.policy.window
        errors[:] = [t for t in errors if t > horizon]
        errors.append(time)
        if len(errors) < self.policy.error_budget:
            return None
        errors.clear()
        self._trips[device] += 1
        if self._trips[device] >= self.policy.max_quarantines:
            self._failed[device] = True
            return "failed"
        self._quarantined_until[device] = time + self.policy.quarantine
        return "quarantined"

    def is_quarantined(self, device: int, time: float) -> bool:
        """Whether ``device`` sits in a quarantine window at ``time``."""
        if not 0 <= device < self.num_devices:
            return False
        return time < self._quarantined_until[device]

    def is_failed(self, device: int) -> bool:
        """Whether ``device`` has been declared failed (permanent)."""
        return 0 <= device < self.num_devices and self._failed[device]

    def avoid(self, device: int, time: float) -> bool:
        """Whether the scheduler should route around ``device`` at ``time``."""
        return self.is_failed(device) or self.is_quarantined(device, time)

    def unhealthy_fraction(self, time: float) -> float:
        """Fraction of the array failed or quarantined at ``time``.

        This is the health signal the serving layer's overload detector
        folds into its pressure estimate: a half-dead array should trip
        brownout sooner than a healthy one at the same queue depth.
        """
        benched = sum(
            1 for device in range(self.num_devices) if self.avoid(device, time)
        )
        return benched / self.num_devices

    def quarantine_release(self, device: int) -> float:
        """End of the device's most recent quarantine window."""
        if not 0 <= device < self.num_devices:
            return -math.inf
        return self._quarantined_until[device]

    def trips(self, device: int) -> int:
        """Quarantine trips recorded against ``device`` so far."""
        if not 0 <= device < self.num_devices:
            return 0
        return self._trips[device]

    def reset(self) -> None:
        """Forget every recorded error, quarantine and failure."""
        for errors in self._errors:
            errors.clear()
        self._quarantined_until = [-math.inf] * self.num_devices
        self._trips = [0] * self.num_devices
        self._failed = [False] * self.num_devices

    def export_state(self) -> Dict:
        """Full monitor state for checkpointing (policy is rebuilt)."""
        return {
            "errors": [list(e) for e in self._errors],
            "quarantined_until": list(self._quarantined_until),
            "trips": list(self._trips),
            "failed": list(self._failed),
        }

    def restore_state(self, state: Dict) -> None:
        """Reinstate :meth:`export_state` output bit for bit."""
        errors = state["errors"]
        if len(errors) != self.num_devices:
            raise ValueError("health state does not match this array's width")
        self._errors = [list(map(float, e)) for e in errors]
        self._quarantined_until = [float(t) for t in state["quarantined_until"]]
        self._trips = [int(t) for t in state["trips"]]
        self._failed = [bool(f) for f in state["failed"]]

    def __repr__(self) -> str:
        benched = sum(self._failed)
        return (
            f"HealthMonitor(devices={self.num_devices}, failed={benched}, "
            f"trips={sum(self._trips)})"
        )
