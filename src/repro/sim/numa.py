"""NUMA topology model (§3.8's locality argument, [31]/[32]'s machine).

The paper's testbed is a four-socket Xeon; SAFS and FlashGraph are
explicitly NUMA-aware: worker threads are pinned to processors, each
partition's vertex state is allocated on its thread's socket, and
"all memory accesses to the vertex state are localized to the processor"
(§3.8).  Two operations break locality:

- the load balancer executing stolen vertices (state lives on the
  victim's socket),
- delivering messages whose sender runs on a different socket than the
  recipient's owner.

This module maps workers to sockets and prices those remote accesses;
the engine charges through it and counts local/remote traffic so the
NUMA ablation can quantify what pinning buys.
"""

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NumaTopology:
    """Sockets and the worker→socket pinning."""

    #: Processor sockets (the paper's machine has 4).
    num_sockets: int = 4
    #: Worker threads spread round-robin-by-block over the sockets.
    num_threads: int = 32
    #: Extra CPU per remote (cross-socket) memory operation, relative to
    #: a local one (QPI hop, ~1.6-2x latency on that generation).
    remote_penalty: float = 0.8

    def __post_init__(self) -> None:
        if self.num_sockets <= 0:
            raise ValueError("need at least one socket")
        if self.num_threads <= 0:
            raise ValueError("need at least one thread")
        if self.remote_penalty < 0:
            raise ValueError("the remote penalty cannot be negative")

    def socket_of(self, worker: int) -> int:
        """The socket a worker thread is pinned to (blocked layout)."""
        if not 0 <= worker < self.num_threads:
            raise ValueError(f"worker {worker} out of range")
        per_socket = max(1, self.num_threads // self.num_sockets)
        return min((worker // per_socket), self.num_sockets - 1)

    def is_remote(self, worker_a: int, worker_b: int) -> bool:
        """Whether two workers sit on different sockets."""
        return self.socket_of(worker_a) != self.socket_of(worker_b)

    def remote_factor(self, worker_a: int, worker_b: int) -> float:
        """Cost multiplier for ``worker_a`` touching ``worker_b``'s memory."""
        if self.is_remote(worker_a, worker_b):
            return 1.0 + self.remote_penalty
        return 1.0

    def socket_populations(self) -> np.ndarray:
        """Workers per socket (layout sanity check / tests)."""
        counts = np.zeros(self.num_sockets, dtype=np.int64)
        for worker in range(self.num_threads):
            counts[self.socket_of(worker)] += 1
        return counts
