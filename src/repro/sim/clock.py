"""Virtual-time primitives for the discrete-event simulation.

Simulated time is a plain float in seconds.  The engine mostly advances
per-worker cursors directly; these helpers exist so that the ordering logic
(I/O completions interleaving with CPU work) is written once and tested once.
"""

import heapq
import itertools
from typing import Any, Iterator, Optional, Tuple


class VirtualClock:
    """A monotonically non-decreasing virtual clock.

    The clock refuses to move backwards: components that merge several time
    lines (e.g. a worker waiting on an I/O completion) call :meth:`advance_to`
    with the candidate time and get back the effective current time.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ValueError("virtual time cannot start negative")
        self._now = float(start)

    @property
    def now(self) -> float:
        """The current virtual time in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move the clock forward by ``delta`` seconds and return the new time."""
        if delta < 0.0:
            raise ValueError("cannot advance the clock by a negative delta")
        self._now += delta
        return self._now

    def advance_to(self, when: float) -> float:
        """Move the clock to ``when`` if that is in the future; never rewind."""
        if when > self._now:
            self._now = when
        return self._now

    def reset(self, start: float = 0.0) -> None:
        """Rewind the clock; only meant for reusing a clock across runs."""
        if start < 0.0:
            raise ValueError("virtual time cannot start negative")
        self._now = float(start)

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.9f})"


class EventQueue:
    """A stable min-heap of ``(time, payload)`` events.

    Ties on time are broken by insertion order, which keeps the simulation
    deterministic — a property every test in this repository relies on.
    """

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()

    def push(self, when: float, payload: Any) -> None:
        """Schedule ``payload`` at virtual time ``when``."""
        if when < 0.0:
            raise ValueError("events cannot be scheduled at negative time")
        heapq.heappush(self._heap, (when, next(self._counter), payload))

    def pop(self) -> Tuple[float, Any]:
        """Remove and return the earliest ``(time, payload)`` event."""
        if not self._heap:
            raise IndexError("pop from an empty EventQueue")
        when, _seq, payload = heapq.heappop(self._heap)
        return when, payload

    def peek_time(self) -> Optional[float]:
        """The time of the earliest event, or ``None`` when empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def drain(self) -> Iterator[Tuple[float, Any]]:
        """Yield every event in time order, emptying the queue."""
        while self._heap:
            yield self.pop()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
