"""Rotating-parity striping and rebuild for the simulated SSD array.

FlashGraph's array is cheap because it is wide — 15 commodity SSDs — and
wide arrays fail.  This module adds a RAID-5-style layer under SAFS:
every parity row holds ``N - 1`` data stripe units plus one parity unit,
with the parity device rotating across rows so parity traffic spreads
over the whole array.  A page lost to whole-device death or silent bit
rot is reconstructed by XOR-ing the surviving ``N - 1`` blocks of its
row, each read charged to that peer's queue at full DES cost — degraded
reads are never free.

Parity is opt-in (:class:`ParityConfig` on the array).  Without it the
array keeps the historical round-robin placement bit for bit, which is
what preserves the golden counter stream for legacy stacks.

Layout (``N`` devices, stripe unit ``S`` pages)::

    unit   u = page // S                 # stripe unit of a page
    row    r = u // (N - 1)              # parity row of the unit
    slot   k = u %  (N - 1)              # data slot within the row
    pdev     = r % N                     # rotating parity device
    device   = k if k < pdev else k + 1  # data slot skips the parity device

Parity blocks have no logical page number; they are addressed with
*negative* flash-page ids (:meth:`ParityLayout.parity_run`) so the fault
plan's silent-corruption coin can rot parity just like data.

The background scrubber (:class:`RebuildState`) re-materialises a dead
device onto a hot spare while the engine keeps running.  It is modelled
lazily: progress is a pure function of elapsed simulated time at a fixed
fraction of one device's sequential bandwidth, and its I/O is charged to
dedicated integer counters (``scrub.pages_read`` / ``scrub.pages_written``)
via telescoping deltas — exact under any query order — rather than
occupying the peer queues, modelling a scrubber confined to idle
bandwidth.  Once a parity row is rebuilt, reads of the dead device's
share of that row are served by the spare's queue at normal cost.
"""

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.obs import registry as reg
from repro.sim.stats import StatsCollector


@dataclass(frozen=True)
class ParityConfig:
    """Opt-in parity protection for an :class:`~repro.sim.ssd_array.SSDArray`.

    The defaults give one rotating parity unit per row and one hot spare,
    with the scrubber consuming a quarter of a single device's sequential
    bandwidth — wide enough to finish rebuilds within a long analytics
    run, narrow enough not to starve foreground reads.
    """

    #: Hot spares standing by for rebuilds (0 disables rebuild).
    hot_spares: int = 1
    #: Fraction of one device's sequential bandwidth the scrubber uses.
    rebuild_rate_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.hot_spares < 0:
            raise ValueError("hot_spares cannot be negative")
        if not 0.0 < self.rebuild_rate_fraction <= 1.0:
            raise ValueError("rebuild_rate_fraction must lie in (0, 1]")


class ParityLayout:
    """Pure placement arithmetic for rotating parity over ``N`` devices."""

    def __init__(self, num_devices: int, stripe_pages: int) -> None:
        if num_devices < 3:
            raise ValueError(
                "rotating parity needs at least 3 devices "
                "(2 data + 1 parity per row)"
            )
        if stripe_pages <= 0:
            raise ValueError("the stripe unit must be at least one page")
        self.num_devices = num_devices
        self.stripe_pages = stripe_pages
        #: Data stripe units per parity row.
        self.data_per_row = num_devices - 1

    def unit_of(self, page_no: int) -> int:
        """Stripe unit holding logical flash page ``page_no``."""
        if page_no < 0:
            raise ValueError("page numbers are non-negative")
        return page_no // self.stripe_pages

    def row_of(self, page_no: int) -> int:
        """Parity row of logical flash page ``page_no``."""
        return self.unit_of(page_no) // self.data_per_row

    def parity_device(self, row: int) -> int:
        """Device holding ``row``'s parity unit (rotates across rows)."""
        return row % self.num_devices

    def device_for_page(self, page_no: int) -> int:
        """Device holding the *data* of logical page ``page_no``."""
        unit = self.unit_of(page_no)
        row = unit // self.data_per_row
        slot = unit % self.data_per_row
        pdev = self.parity_device(row)
        return slot if slot < pdev else slot + 1

    def parity_run(self, row: int, offset: int, num_pages: int) -> Tuple[int, int]:
        """Negative flash-page run addressing ``row``'s parity block.

        ``offset`` is the page offset within the stripe unit.  The ids are
        ``-(1 + row*S + offset) ... -(1 + row*S + offset + n - 1)``;
        the returned pair is ``(smallest_id, num_pages)`` so it plugs
        straight into :meth:`~repro.sim.faults.FaultPlan.corrupted_in_run`.
        """
        if not 0 <= offset < self.stripe_pages:
            raise ValueError("offset must lie within the stripe unit")
        if num_pages <= 0 or offset + num_pages > self.stripe_pages:
            raise ValueError("a parity run must stay within one stripe unit")
        first = -(1 + row * self.stripe_pages + offset + num_pages - 1)
        return first, num_pages

    def peers(
        self, first_page: int, num_pages: int
    ) -> List[Tuple[int, int, int]]:
        """The surviving reads that reconstruct a lost data run.

        The run must lie within one stripe unit.  Returns
        ``(device, peer_first_page, num_pages)`` for the row's other
        ``N - 2`` data units (positive page ids at the same intra-unit
        offsets) plus the parity unit (negative ids), in device order.
        """
        stripe = self.stripe_pages
        unit = self.unit_of(first_page)
        offset = first_page - unit * stripe
        if num_pages <= 0 or offset + num_pages > stripe:
            raise ValueError("a data run must stay within one stripe unit")
        row = unit // self.data_per_row
        row_base = row * self.data_per_row
        reads: List[Tuple[int, int, int]] = []
        for slot in range(self.data_per_row):
            peer_unit = row_base + slot
            if peer_unit == unit:
                continue
            pdev = self.parity_device(row)
            device = slot if slot < pdev else slot + 1
            reads.append((device, peer_unit * stripe + offset, num_pages))
        parity_first, _ = self.parity_run(row, offset, num_pages)
        reads.append((self.parity_device(row), parity_first, num_pages))
        return reads

    def rows_for_pages(self, total_pages: int) -> int:
        """Parity rows needed to hold ``total_pages`` of data."""
        if total_pages <= 0:
            return 0
        units = -(-total_pages // self.stripe_pages)
        return -(-units // self.data_per_row)


def xor_parity(blocks: Sequence[bytes]) -> bytes:
    """XOR parity of equal-length data blocks (the row's parity unit)."""
    if not blocks:
        raise ValueError("parity needs at least one data block")
    arrays = [np.frombuffer(b, dtype=np.uint8) for b in blocks]
    length = arrays[0].size
    if any(a.size != length for a in arrays):
        raise ValueError("all blocks in a parity row must be the same length")
    return np.bitwise_xor.reduce(arrays, axis=0).tobytes()


def reconstruct_block(survivors: Sequence[bytes], parity: bytes) -> bytes:
    """Recover one lost block from the row's survivors plus parity.

    XOR is its own inverse, so the lost block is simply the XOR of
    everything that survived.  With ``N - 1`` data blocks per row this
    recovers any *single* loss exactly; losing two blocks of one row is
    detected upstream (a dead or rotted peer) and reported, never
    silently wrong.
    """
    return xor_parity(list(survivors) + [parity])


class RebuildState:
    """Lazy model of one dead device being scrubbed onto a hot spare.

    Progress is ``rate_pages_per_s * (now - start_time)`` capped at the
    device's allocated capacity — a pure function of simulated time, so
    two replays (or a checkpoint resume) observe identical progress.
    Scrub I/O is charged through :meth:`charge` as integer deltas.
    """

    def __init__(
        self,
        device: int,
        spare: int,
        start_time: float,
        total_pages: int,
        rate_pages_per_s: float,
        stripe_pages: int,
        peer_reads_per_page: int,
    ) -> None:
        if total_pages < 0:
            raise ValueError("total_pages cannot be negative")
        if rate_pages_per_s <= 0.0:
            raise ValueError("the rebuild rate must be positive")
        self.device = device
        self.spare = spare
        self.start_time = start_time
        self.total_pages = total_pages
        self.rate_pages_per_s = rate_pages_per_s
        self.stripe_pages = stripe_pages
        self.peer_reads_per_page = peer_reads_per_page
        self._charged_pages = 0

    def pages_rebuilt(self, time: float) -> int:
        """Device pages re-materialised on the spare by ``time``."""
        if time <= self.start_time:
            return 0
        done = int((time - self.start_time) * self.rate_pages_per_s)
        return min(done, self.total_pages)

    def rows_rebuilt(self, time: float) -> int:
        """Whole parity rows of the device rebuilt by ``time``.

        The scrubber works row by row (it must read the full row to XOR
        the lost unit back), so a row serves from the spare only once
        every one of its pages is rebuilt.
        """
        return self.pages_rebuilt(time) // self.stripe_pages

    def row_covered(self, row: int, time: float) -> bool:
        """Whether parity row ``row`` of the device serves from the spare."""
        return row < self.rows_rebuilt(time)

    def complete(self, time: float) -> bool:
        """Whether the whole device has been re-materialised."""
        return self.pages_rebuilt(time) >= self.total_pages

    def charge(self, stats: StatsCollector, time: float) -> None:
        """Charge scrub I/O counters up to ``time`` (telescoping deltas).

        Integer additions commute exactly, so any interleaving of charge
        points yields the same final counters as one lump charge — the
        property that keeps checkpoint resume counter-identical.
        """
        done = self.pages_rebuilt(time)
        delta = done - self._charged_pages
        if delta <= 0:
            return
        self._charged_pages = done
        stats.add(reg.SCRUB_PAGES_WRITTEN, delta)
        stats.add(reg.SCRUB_PAGES_READ, delta * self.peer_reads_per_page)

    def export_state(self) -> Dict:
        """Every field needed to resume the rebuild bit-identically."""
        return {
            "device": self.device,
            "spare": self.spare,
            "start_time": self.start_time,
            "total_pages": self.total_pages,
            "rate_pages_per_s": self.rate_pages_per_s,
            "stripe_pages": self.stripe_pages,
            "peer_reads_per_page": self.peer_reads_per_page,
            "charged_pages": self._charged_pages,
        }

    @classmethod
    def from_state(cls, state: Dict) -> "RebuildState":
        """Rebuild a :class:`RebuildState` from :meth:`export_state`."""
        rebuild = cls(
            device=int(state["device"]),
            spare=int(state["spare"]),
            start_time=float(state["start_time"]),
            total_pages=int(state["total_pages"]),
            rate_pages_per_s=float(state["rate_pages_per_s"]),
            stripe_pages=int(state["stripe_pages"]),
            peer_reads_per_page=int(state["peer_reads_per_page"]),
        )
        rebuild._charged_pages = int(state["charged_pages"])
        return rebuild

    def __repr__(self) -> str:
        return (
            f"RebuildState(device={self.device}, spare={self.spare}, "
            f"total_pages={self.total_pages})"
        )
