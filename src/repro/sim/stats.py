"""Counters shared by every layer of the stack.

A single :class:`StatsCollector` instance threads through the SSD array, the
SAFS page cache, the engine and the benchmark harness, so that a benchmark
can report exact byte counts, request counts and hit rates next to the
simulated runtime.
"""

from collections import defaultdict
from typing import Dict, Iterable, Mapping


class StatsCollector:
    """A bag of named numeric counters.

    Counter names are free-form dotted strings; the conventional namespaces
    are ``ssd.*`` (device model), ``cache.*`` (SAFS page cache), ``io.*``
    (request scheduling), ``engine.*`` (vertex execution) and ``msg.*``
    (message passing).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = defaultdict(float)

    def add(self, name: str, value: float = 1.0) -> None:
        """Increment counter ``name`` by ``value``."""
        self._counters[name] += value

    def set(self, name: str, value: float) -> None:
        """Overwrite counter ``name`` (used for gauges such as peak memory)."""
        self._counters[name] = value

    def get(self, name: str, default: float = 0.0) -> float:
        """Read counter ``name``, returning ``default`` when never touched."""
        return self._counters.get(name, default)

    def max(self, name: str, value: float) -> None:
        """Raise counter ``name`` to ``value`` if that is larger."""
        if value > self._counters.get(name, float("-inf")):
            self._counters[name] = value

    def names(self) -> Iterable[str]:
        """All counter names touched so far, sorted."""
        return sorted(self._counters)

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict copy of every counter."""
        return dict(self._counters)

    def merge(self, other: Mapping[str, float]) -> None:
        """Add every counter of ``other`` into this collector."""
        for name, value in other.items():
            self._counters[name] += value

    def diff(self, baseline: Mapping[str, float]) -> Dict[str, float]:
        """Counters accumulated since ``baseline`` (an earlier snapshot)."""
        out: Dict[str, float] = {}
        for name, value in self._counters.items():
            delta = value - baseline.get(name, 0.0)
            if delta:
                out[name] = delta
        return out

    def reset(self) -> None:
        """Zero every counter."""
        self._counters.clear()

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def __repr__(self) -> str:
        return f"StatsCollector({len(self._counters)} counters)"
