"""Counters shared by every layer of the stack.

A single :class:`StatsCollector` instance threads through the SSD array, the
SAFS page cache, the engine and the benchmark harness, so that a benchmark
can report exact byte counts, request counts and hit rates next to the
simulated runtime.

Besides plain counters the collector carries two observability-only
stores: fixed-bucket :class:`Histogram` distributions and time-series
gauges (sampled values).  Both live apart from the counter dict, so
:meth:`StatsCollector.snapshot` / :meth:`StatsCollector.diff` — the
bit-identical contract the golden tests pin — never see them; they are
fed only by the armed tracer in :mod:`repro.obs`.
"""

from bisect import bisect_left
from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

#: Version tag of the :meth:`StatsCollector.metrics_snapshot` schema,
#: shared with the bench harness's ``BENCH_metrics.json``.
METRICS_SCHEMA = "repro.metrics/v1"


class Histogram:
    """A fixed-bucket histogram over ascending upper bounds.

    ``bounds = (b0, b1, ...)`` defines buckets ``(-inf, b0]``,
    ``(b0, b1]``, … plus one overflow bucket past the last bound.  Bounds
    are fixed at construction so two runs always bucket identically.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float]) -> None:
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be ascending")
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile estimated from the bucket counts.

        Interpolation semantics (shared by every quantile the stack
        reports, so two call sites can never disagree):

        - The target rank is ``q * count``; the containing bucket is the
          first whose cumulative count reaches it.
        - Mass is assumed uniform inside a bucket, so the result is a
          linear interpolation between the bucket's edges by the rank's
          position within the bucket.
        - The underflow bucket's lower edge is the observed ``min``; the
          overflow bucket's upper edge is the observed ``max`` — the
          histogram never extrapolates past what it actually saw.
        - The result is clamped to ``[min, max]``; an empty histogram
          returns ``0.0``; ``q <= 0`` returns ``min``, ``q >= 1`` ``max``.

        Deterministic: a pure function of the bucket counts and the
        observed extrema, so same-seed runs agree byte for byte.
        """
        if self.count == 0:
            return 0.0
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        target = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lo = self.min if i == 0 else self.bounds[i - 1]
                hi = self.max if i == len(self.bounds) else self.bounds[i]
                fraction = (target - cumulative) / bucket_count
                value = lo + (hi - lo) * fraction
                return min(max(value, self.min), self.max)
            cumulative += bucket_count
        return self.max  # pragma: no cover - float backstop

    def summary(self) -> Dict[str, object]:
        """A JSON-ready description (stable key order via sort on dump)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.count} samples over {len(self.counts)} buckets)"


class StatsCollector:
    """A bag of named numeric counters.

    Counter names are free-form dotted strings; the conventional namespaces
    are ``ssd.*`` (device model), ``cache.*`` (SAFS page cache), ``io.*``
    (request scheduling), ``engine.*`` (vertex execution) and ``msg.*``
    (message passing).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = defaultdict(float)
        # Observability-only stores (fed by repro.obs when tracing is
        # armed): never part of snapshot()/diff(), so the counter stream
        # stays bit-identical whether or not they are populated.
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, List[Tuple[float, float]]] = {}

    def add(self, name: str, value: float = 1.0) -> None:
        """Increment counter ``name`` by ``value``."""
        self._counters[name] += value

    def set(self, name: str, value: float) -> None:
        """Overwrite counter ``name`` (used for gauges such as peak memory)."""
        self._counters[name] = value

    def get(self, name: str, default: float = 0.0) -> float:
        """Read counter ``name``, returning ``default`` when never touched."""
        return self._counters.get(name, default)

    def max(self, name: str, value: float) -> None:
        """Raise counter ``name`` to ``value`` if that is larger."""
        if value > self._counters.get(name, float("-inf")):
            self._counters[name] = value

    def names(self) -> Iterable[str]:
        """All counter names touched so far, sorted."""
        return sorted(self._counters)

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict copy of every counter."""
        return dict(self._counters)

    def merge(self, other: Mapping[str, float]) -> None:
        """Add every counter of ``other`` into this collector."""
        for name, value in other.items():
            self._counters[name] += value

    def diff(self, baseline: Mapping[str, float]) -> Dict[str, float]:
        """Counters accumulated since ``baseline`` (an earlier snapshot)."""
        out: Dict[str, float] = {}
        for name, value in self._counters.items():
            delta = value - baseline.get(name, 0.0)
            if delta:
                out[name] = delta
        return out

    # ------------------------------------------------------------------
    # Observability: histograms and time-series gauges
    # ------------------------------------------------------------------

    def observe(self, name: str, value: float, bounds: Sequence[float] = None) -> None:
        """Record ``value`` into histogram ``name``.

        ``bounds`` fixes the bucket layout on first observation and must
        be supplied then; later calls may omit it (a mismatch raises, so
        two call sites cannot silently disagree about the layout).
        """
        hist = self._histograms.get(name)
        if hist is None:
            if bounds is None:
                raise ValueError(
                    f"histogram {name!r} does not exist yet; pass its bounds"
                )
            hist = self._histograms[name] = Histogram(bounds)
        elif bounds is not None and tuple(float(b) for b in bounds) != hist.bounds:
            raise ValueError(f"histogram {name!r} already has different bounds")
        hist.observe(value)

    def sample(self, name: str, time: float, value: float) -> None:
        """Append one ``(time, value)`` point to gauge series ``name``."""
        self._series.setdefault(name, []).append((float(time), float(value)))

    def histogram(self, name: str):
        """The :class:`Histogram` named ``name``, or ``None``."""
        return self._histograms.get(name)

    def histograms(self) -> Dict[str, Histogram]:
        """Every histogram, by name."""
        return dict(self._histograms)

    def series(self, name: str) -> List[Tuple[float, float]]:
        """The gauge series named ``name`` (empty if never sampled)."""
        return list(self._series.get(name, ()))

    def metrics_snapshot(self) -> Dict[str, object]:
        """Counters + histogram summaries + gauge series, JSON-ready.

        The stable schema (:data:`METRICS_SCHEMA`) shared by the bench
        harness's ``BENCH_metrics.json`` and the CLI exporters.
        """
        return {
            "schema": METRICS_SCHEMA,
            "counters": {name: self._counters[name] for name in sorted(self._counters)},
            "histograms": {
                name: self._histograms[name].summary()
                for name in sorted(self._histograms)
            },
            "series": {
                name: [[t, v] for t, v in self._series[name]]
                for name in sorted(self._series)
            },
        }

    def reset(self) -> None:
        """Zero every counter, histogram and gauge series."""
        self._counters.clear()
        self._histograms.clear()
        self._series.clear()

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def __repr__(self) -> str:
        return f"StatsCollector({len(self._counters)} counters)"
