"""Deterministic fault injection for the simulated SSD array.

FlashGraph's credibility rests on SAFS absorbing the messiness of a
15-SSD array: slow devices, stalled queues and failed reads must not
corrupt results or deadlock the engine.  This module is the single
source of truth for *when* and *how* the simulated devices misbehave.

A :class:`FaultPlan` is a seeded, immutable schedule of fault events.
Every decision it makes is a pure function of ``(seed, device,
attempt ordinal, simulated time)`` — there is no runtime RNG state — so
replaying a run with the same plan reproduces every fault, every retry
and every completion time bit for bit.  That determinism is what makes
the chaos tests CI-able.

The fault taxonomy (see ``docs/fault_model.md``):

- :class:`LatencySpike` — a device serves requests slower for a window
  of simulated time (thermal throttling, background GC).
- :class:`StuckQueue` — requests arriving in a window do not start
  service until the window ends (a wedged I/O thread or firmware stall).
- :class:`TransientErrors` — individual read attempts in a window fail
  after consuming their service time (ECC/checksum failures); the SAFS
  layer retries them with backoff.
- :class:`DeviceFailure` — the device rejects every request during
  ``[at, until)`` (whole-SSD death); SAFS re-routes reads to surviving
  devices in degraded mode.
- :class:`SilentCorruption` — flash pages on a device rot during a
  window (bit flips the device's own ECC misses); the data comes back
  flagged *good* and only the SAFS integrity layer's per-page checksums
  (``safs/integrity.py``) catch it.  Rot is persistent per page:
  re-reading a rotted page fails again, so recovery needs parity
  reconstruction (``sim/parity.py``), not a retry.
"""

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

_MASK64 = (1 << 64) - 1


def fault_coin(seed: int, device: int, ordinal: int, salt: int = 0) -> float:
    """A deterministic uniform draw in ``[0, 1)``.

    A splitmix64-style finalizer over ``(seed, device, ordinal, salt)``:
    the same attempt on the same device under the same seed always draws
    the same value, which is how transient errors stay reproducible
    without any runtime RNG state.
    """
    x = (
        seed * 0x9E3779B97F4A7C15
        + device * 0xBF58476D1CE4E5B9
        + ordinal * 0x94D049BB133111EB
        + salt * 0xD6E8FEB86659FD93
    ) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x / 2.0**64


@dataclass(frozen=True)
class LatencySpike:
    """Service on ``device`` is ``factor``x slower in ``[start, end)``."""

    device: int
    start: float
    end: float
    factor: float

    def __post_init__(self) -> None:
        if self.factor <= 0.0:
            raise ValueError("a latency spike factor must be positive")
        if self.end <= self.start:
            raise ValueError("a latency spike window must have positive length")


@dataclass(frozen=True)
class StuckQueue:
    """Requests arriving at ``device`` in ``[start, end)`` stall to ``end``."""

    device: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("a stuck-queue window must have positive length")


@dataclass(frozen=True)
class TransientErrors:
    """Attempts served by ``device`` in ``[start, end)`` fail with
    ``probability`` (decided by the deterministic :func:`fault_coin`)."""

    device: int
    start: float
    end: float
    probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("an error probability must lie in [0, 1]")
        if self.end <= self.start:
            raise ValueError("a transient-error window must have positive length")


@dataclass(frozen=True)
class DeviceFailure:
    """``device`` rejects every request during ``[at, until)``."""

    device: int
    at: float
    until: float = math.inf

    def __post_init__(self) -> None:
        if self.until <= self.at:
            raise ValueError("a device failure must last a positive time")


@dataclass(frozen=True)
class SilentCorruption:
    """Flash pages on ``device`` rot with ``probability`` in ``[start, end)``.

    Whether a given page is rotted is a pure function of ``(seed, device,
    flash page number)`` — decided by :func:`fault_coin` with a dedicated
    salt — so corruption is *persistent*: the same page reads back bad on
    every attempt inside the window, exactly like real bit rot.  Negative
    page numbers address parity blocks (see :mod:`repro.sim.parity`), so
    parity itself can rot too.
    """

    device: int
    start: float
    end: float
    probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("a corruption probability must lie in [0, 1]")
        if self.end <= self.start:
            raise ValueError("a corruption window must have positive length")


FaultEvent = Union[
    LatencySpike, StuckQueue, TransientErrors, DeviceFailure, SilentCorruption
]

#: Salt separating the per-page corruption coin from the per-attempt
#: transient-error coin (both draw from :func:`fault_coin`).
_CORRUPTION_SALT = 0x5EED_0C0DE


class FaultPlan:
    """A seeded, immutable schedule of device faults.

    The plan answers point queries from the device model (`SSD`) and the
    array: *is this device dead now*, *how long does this arrival stall*,
    *how much slower is service now*, *does this attempt fail*.  All
    answers are pure functions of the constructor arguments, so a plan
    can be shared by any number of replays.
    """

    def __init__(self, events: Sequence[FaultEvent] = (), seed: int = 0) -> None:
        self.seed = int(seed)
        self.events: Tuple[FaultEvent, ...] = tuple(events)
        self._spikes: Dict[int, List[LatencySpike]] = {}
        self._stalls: Dict[int, List[StuckQueue]] = {}
        self._errors: Dict[int, List[TransientErrors]] = {}
        self._failures: Dict[int, List[DeviceFailure]] = {}
        self._corruption: Dict[int, List[SilentCorruption]] = {}
        for event in self.events:
            if isinstance(event, LatencySpike):
                self._spikes.setdefault(event.device, []).append(event)
            elif isinstance(event, StuckQueue):
                self._stalls.setdefault(event.device, []).append(event)
            elif isinstance(event, TransientErrors):
                self._errors.setdefault(event.device, []).append(event)
            elif isinstance(event, DeviceFailure):
                self._failures.setdefault(event.device, []).append(event)
            elif isinstance(event, SilentCorruption):
                self._corruption.setdefault(event.device, []).append(event)
            else:
                raise TypeError(f"unknown fault event {event!r}")

    def is_dead(self, device: int, time: float) -> bool:
        """Whether ``device`` rejects requests at ``time``."""
        return any(
            f.at <= time < f.until for f in self._failures.get(device, ())
        )

    def dead_until(self, device: int, time: float) -> float:
        """End of the failure window covering ``time`` (``time`` if alive)."""
        until = time
        for f in self._failures.get(device, ()):
            if f.at <= time < f.until and f.until > until:
                until = f.until
        return until

    def stall_release(self, device: int, arrival: float) -> float:
        """When a request arriving at ``arrival`` may start queueing.

        Returns ``arrival`` itself when no stuck-queue window covers it,
        otherwise the latest covering window's end.
        """
        release = arrival
        for s in self._stalls.get(device, ()):
            if s.start <= arrival < s.end and s.end > release:
                release = s.end
        return release

    def service_factor(self, device: int, start: float) -> float:
        """Service-time multiplier for an attempt starting at ``start``."""
        factor = 1.0
        for s in self._spikes.get(device, ()):
            if s.start <= start < s.end:
                factor *= s.factor
        return factor

    def read_error(self, device: int, ordinal: int, start: float) -> bool:
        """Whether attempt ``ordinal`` starting at ``start`` fails.

        ``ordinal`` is the device's monotone attempt counter; the coin it
        seeds is independent of timing, so two runs that submit the same
        attempt sequence see the same failures even if clocks drift.
        """
        for window_index, e in enumerate(self._errors.get(device, ())):
            if e.start <= start < e.end and e.probability > 0.0:
                if fault_coin(self.seed, device, ordinal, window_index) < e.probability:
                    return True
        return False

    def corrupted(self, device: int, flash_page: int, time: float) -> bool:
        """Whether ``flash_page`` on ``device`` is rotted at ``time``.

        Persistent per page within a window: the decision depends only on
        ``(seed, device, flash_page, window)``, never on the attempt, so a
        retry of a rotted page fails exactly like the first read did.
        """
        for window_index, c in enumerate(self._corruption.get(device, ())):
            if c.start <= time < c.end and c.probability > 0.0:
                coin = fault_coin(
                    self.seed, device, flash_page, _CORRUPTION_SALT + window_index
                )
                if coin < c.probability:
                    return True
        return False

    def corrupted_in_run(
        self, device: int, first_page: int, num_pages: int, time: float
    ) -> int:
        """Rotted pages among ``[first_page, first_page + num_pages)``."""
        if not self._corruption.get(device):
            return 0
        return sum(
            1
            for page in range(first_page, first_page + num_pages)
            if self.corrupted(device, page, time)
        )

    def has_corruption(self, device: int) -> bool:
        """Whether any corruption window ever targets ``device``."""
        return bool(self._corruption.get(device))

    def devices(self) -> Tuple[int, ...]:
        """Every device index named by at least one event, sorted."""
        touched = (
            set(self._spikes)
            | set(self._stalls)
            | set(self._errors)
            | set(self._failures)
            | set(self._corruption)
        )
        return tuple(sorted(touched))

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.seed}, events={len(self.events)})"


@dataclass(frozen=True)
class DeviceCompletion:
    """Outcome of one device attempt.

    ``service`` is the device-busy time this attempt charged — the
    no-double-charge invariant is that a device's ``busy_time`` always
    equals the sum of ``service`` over every attempt it accepted.
    """

    #: Virtual time the attempt completed or its failure was detected.
    time: float
    #: Whether the data is good.
    ok: bool
    #: ``None``, ``"transient"``, ``"dead"``, ``"corrupt"`` (checksum
    #: mismatch caught by the integrity layer) or ``"quarantined"`` (the
    #: health monitor is routing around the device).
    error: Optional[str]
    #: Device-busy seconds this attempt charged.
    service: float
    #: Device that served (or rejected) the attempt.
    device: int


@dataclass(frozen=True)
class FaultPolicy:
    """How the SAFS layer responds to device faults.

    The defaults are inert: an infinite timeout and reroute enabled
    change nothing on a fault-free array, so a stack without a
    :class:`FaultPlan` behaves bit-identically to one built before this
    module existed.
    """

    #: Retries (with exponential backoff) before a read is unrecoverable.
    max_retries: int = 4
    #: Base backoff in simulated seconds; doubles per retry.
    retry_backoff: float = 500e-6
    #: Per-attempt timeout in simulated seconds; an attempt that has not
    #: completed by then is declared lost and retried.
    request_timeout: float = math.inf
    #: Whether reads on a dead device re-route to surviving devices.
    reroute_on_dead: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if self.retry_backoff < 0.0:
            raise ValueError("retry_backoff cannot be negative")
        if self.request_timeout <= 0.0:
            raise ValueError("request_timeout must be positive")

    def backoff(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        return self.retry_backoff * (2.0 ** (attempt - 1))


#: The inert policy every SAFS instance uses unless told otherwise.
DEFAULT_FAULT_POLICY = FaultPolicy()


class UnrecoverableIOError(RuntimeError):
    """A read failed past every retry, reroute and timeout budget.

    Raised by the SAFS scheduler; the engine catches it and surfaces a
    clean ``IterationAborted`` with partial-progress stats instead of
    hanging or returning wrong values.
    """

    def __init__(self, device: int, time: float, reason: str) -> None:
        super().__init__(
            f"device {device}: unrecoverable read at t={time:.6f} ({reason})"
        )
        self.device = device
        self.time = time
        self.reason = reason


def default_chaos_plan(seed: int, num_devices: int = 15) -> FaultPlan:
    """The standard scriptable chaos profile (``repro.cli run --fault-seed``).

    One deterministic plan per seed, touching every fault class on a
    twitter-sim-scale timescale: a flaky device (transient errors), a
    latency-spiked device, a stuck queue, a whole-SSD death and a window
    of silent bit rot — all on devices derived from the seed, so two runs
    with the same seed replay the same chaos bit for bit.
    """
    if num_devices < 5:
        raise ValueError("the default chaos profile needs at least 5 devices")
    # Distinct devices per fault class, spread by successive coin draws.
    picks: List[int] = []
    ordinal = 0
    while len(picks) < 5:
        device = int(fault_coin(seed, 0, ordinal, salt=71) * num_devices)
        ordinal += 1
        if device not in picks:
            picks.append(device)
    flaky, spiked, stuck, dying, rotting = picks
    return FaultPlan(
        [
            TransientErrors(device=flaky, start=0.0, end=10.0, probability=0.1),
            LatencySpike(device=spiked, start=0.001, end=0.05, factor=4.0),
            StuckQueue(device=stuck, start=0.0005, end=0.004),
            DeviceFailure(device=dying, at=0.002),
            SilentCorruption(device=rotting, start=0.0, end=10.0, probability=0.02),
        ],
        seed=seed,
    )
