"""Observability for the FlashGraph reproduction: span tracing, a
metrics registry, a simulated-time profiler, and the serving layer's
SLO observability plane.

All claims in the source paper are where-did-the-time-go claims, so this
package makes the DES substrate explain itself: :func:`arm` threads an
:class:`Observer` through every layer (engine, SAFS, scheduler, array,
devices), collecting request/io/device spans with stage events in
deterministic simulated time; :mod:`repro.obs.registry` is the single
source of truth for counter, histogram and gauge names; and
:mod:`repro.obs.report` turns a traced run into a per-iteration
compute/queue/service/recovery breakdown (the ``repro profile``
subcommand).  For the serving layer, :mod:`repro.obs.timeline` streams
windowed per-tenant snapshots on the DES clock, :mod:`repro.obs.slo`
tracks multi-window error-budget burn against declared tenant
objectives (the ``repro slo`` subcommand), and :func:`query_path` joins
every span a query produced — admission, barriers, device I/O, outcome
— into one critical-path view.  Tracing is zero-cost when disarmed —
every hook hides behind one ``obs is not None`` check and the counter
stream stays bit-identical to an untraced run.
"""

from repro.obs import registry
from repro.obs.report import (
    PROFILE_SCHEMA,
    TICK_SECONDS,
    build_profile,
    format_profile,
    validate_profile,
)
from repro.obs.slo import (
    SLO_SCHEMA,
    SLOConfig,
    SLOEvent,
    SLOTracker,
    build_slo_report,
    format_slo_report,
    validate_slo_report,
)
from repro.obs.spans import (
    Observer,
    arm,
    disarm,
    query_path,
    to_chrome,
    to_jsonl,
    write_chrome,
    write_jsonl,
)
from repro.obs.timeline import TimelineConfig, TimelineSampler

__all__ = [
    "Observer",
    "PROFILE_SCHEMA",
    "SLO_SCHEMA",
    "SLOConfig",
    "SLOEvent",
    "SLOTracker",
    "TICK_SECONDS",
    "TimelineConfig",
    "TimelineSampler",
    "arm",
    "build_profile",
    "build_slo_report",
    "disarm",
    "format_profile",
    "format_slo_report",
    "query_path",
    "registry",
    "to_chrome",
    "to_jsonl",
    "validate_profile",
    "validate_slo_report",
    "write_chrome",
    "write_jsonl",
]
