"""Observability for the FlashGraph reproduction: span tracing, a
metrics registry, and a simulated-time profiler.

All claims in the source paper are where-did-the-time-go claims, so this
package makes the DES substrate explain itself: :func:`arm` threads an
:class:`Observer` through every layer (engine, SAFS, scheduler, array,
devices), collecting request/io/device spans with stage events in
deterministic simulated time; :mod:`repro.obs.registry` is the single
source of truth for counter, histogram and gauge names; and
:mod:`repro.obs.report` turns a traced run into a per-iteration
compute/queue/service/recovery breakdown (the ``repro profile``
subcommand).  Tracing is zero-cost when disarmed — every hook hides
behind one ``obs is not None`` check and the counter stream stays
bit-identical to an untraced run.
"""

from repro.obs import registry
from repro.obs.report import (
    PROFILE_SCHEMA,
    TICK_SECONDS,
    build_profile,
    format_profile,
    validate_profile,
)
from repro.obs.spans import (
    Observer,
    arm,
    disarm,
    to_chrome,
    to_jsonl,
    write_chrome,
    write_jsonl,
)

__all__ = [
    "Observer",
    "PROFILE_SCHEMA",
    "TICK_SECONDS",
    "arm",
    "build_profile",
    "disarm",
    "format_profile",
    "registry",
    "to_chrome",
    "to_jsonl",
    "validate_profile",
    "write_chrome",
    "write_jsonl",
]
