"""Span tracing across every layer of the stack, in simulated time.

An :class:`Observer` is *armed* onto an engine with :func:`arm`: every
layer (engine, SAFS, scheduler, array, devices) carries an ``obs``
attribute that defaults to ``None`` and is consulted behind a single
``is not None`` check, so a disarmed run does no observability work at
all and its counter stream stays bit-identical to the seed.

Armed, the stack reports three kinds of spans:

- **request spans** — one per engine-level I/O element (a vertex's edge
  list or attribute read), linked to the merged I/O span that carried it;
- **io spans** — one per merged request dispatched through SAFS, with
  stage events accumulated as the request flows (``cache_lookup``,
  ``dedup``, ``retried``, ``rerouted``, ``reconstructed``, ``timeout``,
  ``corrupt``, ``quarantined``, ``dead``, ``transient``);
- **device spans** — one per device attempt, carrying exact queue wait
  and service time; per device, service durations tile the device's
  accumulated busy time.

Everything is deterministic: ids are sequence numbers, times are
simulated floats, and exports sort keys — two runs of the same seeded
simulation produce byte-identical traces.

Exports: :func:`to_jsonl` (one JSON object per line) and
:func:`to_chrome` (Chrome ``trace_event`` JSON loadable in
``chrome://tracing`` / Perfetto, one track per device and stack layer).
"""

import json
from heapq import heappop, heappush
from typing import Dict, List, Optional

from repro.obs import registry

#: Microseconds per simulated second (Chrome trace timestamps are µs).
_US = 1e6

#: Chrome thread ids: engine iterations, SAFS io spans, query lifecycle
#: events (serving runs only), then devices.
_TID_ENGINE = 1
_TID_SAFS = 2
_TID_QUERIES = 3
_TID_DEVICE_BASE = 100


def _jsonable(value):
    """Coerce enum-ish context members to plain JSON scalars."""
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    inner = getattr(value, "value", None)
    if isinstance(inner, (int, float, str)):
        return inner
    return repr(value)


class Observer:
    """Collects spans, stage events and metrics from an armed stack.

    Purely additive: it reads simulated state but never mutates clocks,
    queues or counters, so an armed run's :class:`RunResult` is
    bit-identical to a disarmed one.
    """

    def __init__(self) -> None:
        #: One row per iteration (wall span, busy deltas, stall weights).
        self.iterations: List[dict] = []
        #: One record per merged request dispatched through SAFS.
        self.io_spans: List[dict] = []
        #: One record per device attempt (queue wait + service).
        self.device_spans: List[dict] = []
        #: One record per engine-level request element.
        self.request_spans: List[dict] = []
        #: Per-query lifecycle events (queued/shed/admitted/barrier/…),
        #: fed by the serving layer; empty — and therefore invisible in
        #: every export — on batch runs.
        self.query_spans: List[dict] = []
        #: Stats collector fed with histograms/gauges (set by :func:`arm`).
        self.stats = None
        #: Io-span ids of the last ``submit_spans`` call, for the engine
        #: fast path to link elements to their merged span.
        self.last_io_ids: Optional[List[int]] = None
        #: Active query span context (``{"query", "tenant", "app"}``),
        #: set by :class:`~repro.core.engine.EngineJob` around each step
        #: when the job was started with one; every span recorded while
        #: it is set carries the query id, which is what joins the
        #: layers into one per-query critical path (:func:`query_path`).
        self._query: Optional[dict] = None
        self._iter: Optional[dict] = None
        self._io: Optional[dict] = None
        self._next_io = 0
        self._recovery_depth = 0
        # Per-device min-heap of service completion times: queue depth at
        # arrival is the number of earlier attempts still in the queue.
        self._outstanding: Dict[int, list] = {}
        self._busy_base: List[float] = []
        self._engine = None

    # ------------------------------------------------------------------
    # Query span context (end-to-end tracing across the serving layer)
    # ------------------------------------------------------------------

    def set_query_context(self, context: dict) -> None:
        """Tag every span recorded until :meth:`clear_query_context`
        with ``context`` (``{"query": id, "tenant": ..., "app": ...}``)."""
        self._query = context

    def clear_query_context(self) -> None:
        self._query = None

    def note_query_event(
        self, event: str, time: float, context: dict, **fields
    ) -> None:
        """One query lifecycle event (queued, shed, admitted,
        deadline-abort, completed, aborted) at simulated ``time``."""
        record = {
            "type": "query",
            "event": event,
            "time": time,
            "query": context["query"],
            "tenant": context["tenant"],
            "app": context["app"],
        }
        for key, value in sorted(fields.items()):
            record[key] = _jsonable(value)
        self.query_spans.append(record)

    def job_barrier(self, iteration: int, time: float, frontier: int) -> None:
        """An :class:`~repro.core.engine.EngineJob` iteration barrier.

        Recorded only under a query span context: batch runs (which
        never set one) keep producing byte-identical traces.
        """
        if self._query is None:
            return
        self.note_query_event(
            "barrier",
            time,
            self._query,
            iteration=int(iteration),
            frontier=int(frontier),
        )

    def _tag_query(self, record: dict) -> dict:
        """Stamp the active query context onto ``record`` (no-op when
        none is set, so batch-run spans are byte-identical to before)."""
        if self._query is not None:
            record["query"] = self._query["query"]
            record["tenant"] = self._query["tenant"]
        return record

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------

    def begin_iteration(self, iteration: int, frontier: int, start: float, workers) -> None:
        self._iter = {
            "type": "iteration",
            "iteration": int(iteration),
            "frontier": int(frontier),
            "start": start,
            "end": start,
            "workers": len(workers),
            "busy_sum": 0.0,
            "queue_s": 0.0,
            "service_s": 0.0,
            "recovery_s": 0.0,
        }
        self._busy_base = [w.busy for w in workers]
        self.iterations.append(self._tag_query(self._iter))

    def end_iteration(self, barrier: float, workers, engine) -> None:
        row = self._iter
        if row is None:
            return
        row["end"] = barrier
        row["busy_sum"] = sum(
            w.busy - b for w, b in zip(workers, self._busy_base)
        )
        stats = self.stats
        if stats is not None:
            stats.sample(registry.GAUGE_FRONTIER_SIZE, barrier, row["frontier"])
            if engine.safs is not None:
                stats.sample(
                    registry.GAUGE_CACHE_OCCUPANCY, barrier, len(engine.safs.cache)
                )
                for index, rate in engine.safs.cache.set_hit_rate_samples().items():
                    stats.sample(
                        f"{registry.GAUGE_CACHE_SET_HIT_RATE}.{index}",
                        barrier,
                        rate,
                    )
            in_flight = 0
            for heap in self._outstanding.values():
                in_flight += sum(1 for done in heap if done > barrier)
            stats.sample(registry.GAUGE_IN_FLIGHT, barrier, in_flight)
        self._iter = None

    # ------------------------------------------------------------------
    # SAFS hooks (filesystem + scheduler)
    # ------------------------------------------------------------------

    def begin_io(
        self, file_id: int, first_page: int, last_page: int, parts: int, issue: float
    ) -> int:
        span_id = self._next_io
        self._next_io += 1
        self._io = {
            "type": "io",
            "id": span_id,
            "file_id": int(file_id),
            "first_page": int(first_page),
            "last_page": int(last_page),
            "parts": int(parts),
            "issue": issue,
            "done": issue,
            "events": [["issued", issue]],
        }
        self.io_spans.append(self._tag_query(self._io))
        if self.stats is not None:
            self.stats.observe(
                registry.HIST_IO_MERGE_RUN_LENGTH,
                parts,
                registry.HISTOGRAM_BOUNDS[registry.HIST_IO_MERGE_RUN_LENGTH],
            )
        return span_id

    def end_io(self, done: float) -> None:
        io = self._io
        if io is None:
            return
        io["done"] = done
        io["events"].append(["completed", done])
        self._io = None

    def io_event(self, stage: str, time: float, **fields) -> None:
        """Attach one stage event to the in-flight io span."""
        io = self._io
        if io is None:
            return
        event = [stage, time]
        if fields:
            event.append({k: _jsonable(v) for k, v in sorted(fields.items())})
        io["events"].append(event)

    def run_done(self, retries: int) -> None:
        """A per-device run completed after ``retries`` retries."""
        if self.stats is not None:
            self.stats.observe(
                registry.HIST_IO_RETRIES_PER_REQUEST,
                retries,
                registry.HISTOGRAM_BOUNDS[registry.HIST_IO_RETRIES_PER_REQUEST],
            )

    def recovery_wait(self, seconds: float) -> None:
        """Simulated seconds spent waiting on backoff/quarantine release."""
        if self._iter is not None and seconds > 0.0:
            self._iter["recovery_s"] += seconds

    def recovery_begin(self) -> None:
        """Enter a recovery section: device work is charged as recovery."""
        self._recovery_depth += 1

    def recovery_end(self) -> None:
        self._recovery_depth -= 1

    def request_event(self, context, issued: float, done: float, io_id: int) -> None:
        """One engine-level request element completed."""
        record = {
            "type": "request",
            "io": int(io_id),
            "issued": issued,
            "done": done,
        }
        if isinstance(context, tuple) and len(context) == 4:
            requester, direction, kind, target = context
            record["vertex"] = _jsonable(requester)
            record["direction"] = _jsonable(direction)
            record["kind"] = _jsonable(kind)
            record["target"] = _jsonable(target)
        elif context is not None:
            record["context"] = [_jsonable(c) for c in context] if isinstance(
                context, (tuple, list)
            ) else _jsonable(context)
        self.request_spans.append(self._tag_query(record))

    def request_events_batch(
        self, vertices, directions, io_ids, issued: float, times
    ) -> None:
        """Vectorized twin of :meth:`request_event` for the fast path.

        ``vertices``/``directions``/``io_ids``/``times`` are parallel
        sequences in delivery order; the fast path serves only
        self-requests for edges, so vertex == target and kind is fixed.
        """
        append = self.request_spans.append
        tag = self._tag_query
        for vertex, direction, io_id, done in zip(
            vertices, directions, io_ids, times
        ):
            append(
                tag({
                    "type": "request",
                    "io": int(io_id),
                    "issued": issued,
                    "done": float(done),
                    "vertex": int(vertex),
                    "direction": _jsonable(direction),
                    "kind": "edges",
                    "target": int(vertex),
                })
            )

    # ------------------------------------------------------------------
    # Device hooks
    # ------------------------------------------------------------------

    def device_span(
        self,
        ssd,
        arrival: float,
        start: float,
        service: float,
        pages: int,
        outcome: str,
        done: float,
    ) -> None:
        """One device attempt: queued at ``arrival``, served
        ``[start, start + service)``, data delivered at ``done``."""
        device = ssd.device_index
        heap = self._outstanding.setdefault(device, [])
        while heap and heap[0] <= arrival:
            heappop(heap)
        depth = len(heap)
        heappush(heap, start + service)
        recovery = self._recovery_depth > 0
        self.device_spans.append(
            self._tag_query({
                "type": "device",
                "device": device,
                "name": ssd.name,
                "io": None if self._io is None else self._io["id"],
                "arrival": arrival,
                "start": start,
                "service": service,
                "pages": int(pages),
                "outcome": outcome,
                "done": done,
                "recovery": recovery,
            })
        )
        row = self._iter
        if row is not None:
            row["queue_s"] += start - arrival
            if recovery:
                row["recovery_s"] += service
            else:
                row["service_s"] += service
        stats = self.stats
        if stats is not None:
            stats.observe(
                f"{registry.HIST_SSD_SERVICE_SECONDS}.{ssd.name}",
                service,
                registry.HISTOGRAM_BOUNDS[registry.HIST_SSD_SERVICE_SECONDS],
            )
            stats.observe(
                registry.HIST_SSD_QUEUE_DEPTH,
                depth,
                registry.HISTOGRAM_BOUNDS[registry.HIST_SSD_QUEUE_DEPTH],
            )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def device_busy_seconds(self) -> Dict[str, float]:
        """Per-device sum of traced service durations.

        By construction each device span charges exactly the service the
        DES charged the device, so this equals each device's
        ``busy_time`` — the acceptance anchor the trace tests pin.
        """
        busy: Dict[str, float] = {}
        for span in self.device_spans:
            busy[span["name"]] = busy.get(span["name"], 0.0) + span["service"]
        return busy


#: Sort-time accessor per record type, for :func:`query_path`.
_SPAN_TIME = {
    "query": lambda r: r["time"],
    "iteration": lambda r: r["start"],
    "io": lambda r: r["issue"],
    "device": lambda r: r["arrival"],
    "request": lambda r: r["issued"],
}

#: Tie-break order at equal times: lifecycle event first, then the
#: containment order iteration ⊃ io ⊃ device ⊃ request.
_SPAN_ORDER = {"query": 0, "iteration": 1, "io": 2, "device": 3, "request": 4}


def query_path(observer: Observer, query: int) -> List[dict]:
    """Every traced record of query ``query``, in critical-path order.

    Joins the query's lifecycle events (queued → shed/admitted →
    barriers → deadline-abort/completed/aborted) with the iteration,
    io, device and request spans its steps produced — the end-to-end
    admission→outcome view the serving acceptance tests pin.  Sorted by
    each record's start time (ties: lifecycle, then outer-to-inner
    span), deterministically.
    """
    path = [
        record
        for record in _records(observer)
        if record.get("query") == query
    ]
    path.sort(key=lambda r: (_SPAN_TIME[r["type"]](r), _SPAN_ORDER[r["type"]]))
    return path


# ----------------------------------------------------------------------
# Arming / disarming
# ----------------------------------------------------------------------

def arm(engine, observer: Optional[Observer] = None) -> Observer:
    """Attach ``observer`` (or a fresh one) to every layer of ``engine``.

    Idempotent; returns the armed observer.  In-memory engines have no
    SAFS stack — only the engine-level hooks arm.
    """
    obs = observer if observer is not None else Observer()
    obs.stats = engine.stats
    obs._engine = engine
    engine.obs = obs
    safs = getattr(engine, "safs", None)
    if safs is not None:
        safs.obs = obs
        safs.scheduler.obs = obs
        # Per-set hit tallies exist only on armed stacks, keeping the
        # disarmed lookup miss path free of set hashing.
        safs.cache.enable_set_tracking()
        array = safs.array
        array.obs = obs
        for ssd in array.ssds:
            ssd.obs = obs
        for spare in array.spares:
            spare.obs = obs
    return obs


def disarm(engine) -> None:
    """Detach any observer from every layer of ``engine``."""
    engine.obs = None
    safs = getattr(engine, "safs", None)
    if safs is not None:
        safs.obs = None
        safs.scheduler.obs = None
        safs.array.obs = None
        for ssd in safs.array.ssds:
            ssd.obs = None
        for spare in safs.array.spares:
            spare.obs = None


# ----------------------------------------------------------------------
# Exports
# ----------------------------------------------------------------------

def _records(observer: Observer):
    for row in observer.iterations:
        yield row
    for span in observer.io_spans:
        yield span
    for span in observer.device_spans:
        yield span
    for span in observer.request_spans:
        yield span
    for span in observer.query_spans:
        yield span


def to_jsonl(observer: Observer) -> str:
    """The full trace as JSON Lines (one record per line, sorted keys)."""
    return "".join(
        json.dumps(record, sort_keys=True) + "\n" for record in _records(observer)
    )


def write_jsonl(observer: Observer, path) -> None:
    """Write :func:`to_jsonl` to ``path``."""
    with open(path, "w") as f:
        f.write(to_jsonl(observer))


def to_chrome(observer: Observer) -> dict:
    """The trace as a Chrome ``trace_event`` document.

    Load in ``chrome://tracing`` or https://ui.perfetto.dev.  Tracks:
    ``engine`` (iteration spans + gauge counters), ``safs`` (merged
    request spans), and one track per device (service spans whose
    durations tile the device's busy time).  Timestamps are µs.
    """
    events: List[dict] = [
        {
            "ph": "M",
            "pid": 0,
            "tid": _TID_ENGINE,
            "name": "thread_name",
            "args": {"name": "engine"},
        },
        {
            "ph": "M",
            "pid": 0,
            "tid": _TID_SAFS,
            "name": "thread_name",
            "args": {"name": "safs"},
        },
    ]
    named_devices = set()
    for row in observer.iterations:
        events.append(
            {
                "ph": "X",
                "pid": 0,
                "tid": _TID_ENGINE,
                "cat": "engine",
                "name": f"iteration {row['iteration']}",
                "ts": row["start"] * _US,
                "dur": (row["end"] - row["start"]) * _US,
                "args": {
                    "frontier": row["frontier"],
                    "busy_sum_s": row["busy_sum"],
                },
            }
        )
        events.append(
            {
                "ph": "C",
                "pid": 0,
                "tid": _TID_ENGINE,
                "name": "frontier",
                "ts": row["start"] * _US,
                "args": {"vertices": row["frontier"]},
            }
        )
    for span in observer.io_spans:
        events.append(
            {
                "ph": "X",
                "pid": 0,
                "tid": _TID_SAFS,
                "cat": "io",
                "name": f"io {span['id']}",
                "ts": span["issue"] * _US,
                "dur": (span["done"] - span["issue"]) * _US,
                "args": {
                    "file_id": span["file_id"],
                    "pages": span["last_page"] - span["first_page"] + 1,
                    "parts": span["parts"],
                    "events": span["events"],
                },
            }
        )
    for span in observer.device_spans:
        tid = _TID_DEVICE_BASE + span["device"]
        if span["device"] not in named_devices:
            named_devices.add(span["device"])
            events.append(
                {
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": span["name"]},
                }
            )
        events.append(
            {
                "ph": "X",
                "pid": 0,
                "tid": tid,
                "cat": "device",
                "name": "recovery" if span["recovery"] else f"io {span['io']}",
                "ts": span["start"] * _US,
                "dur": span["service"] * _US,
                "args": {
                    "pages": span["pages"],
                    "outcome": span["outcome"],
                    "queue_us": (span["start"] - span["arrival"]) * _US,
                },
            }
        )
    if observer.query_spans:
        # Serving runs only: batch traces carry no query events, so
        # their Chrome documents are byte-identical to before.
        events.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": _TID_QUERIES,
                "name": "thread_name",
                "args": {"name": "queries"},
            }
        )
        for span in observer.query_spans:
            args = {
                key: value
                for key, value in span.items()
                if key not in ("type", "event", "time")
            }
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "pid": 0,
                    "tid": _TID_QUERIES,
                    "cat": "query",
                    "name": f"q{span['query']} {span['event']}",
                    "ts": span["time"] * _US,
                    "args": args,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome(observer: Observer, path) -> None:
    """Write :func:`to_chrome` to ``path`` as sorted-key JSON."""
    with open(path, "w") as f:
        json.dump(to_chrome(observer), f, sort_keys=True)
        f.write("\n")
