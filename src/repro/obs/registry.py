"""The metrics registry: every counter, histogram and gauge name.

Counter names used to be ad-hoc dotted strings scattered across ``sim/``
and ``safs/``; a typo'd name silently created a new counter and the
report downstream read zeros.  This module is the single source of truth:
production code references these constants, and the registry tests assert
that every counter a run produces is a member of :data:`KNOWN_COUNTERS`,
so an unknown name fails fast.

The module is deliberately dependency-free (pure constants) so any layer
— ``sim``, ``safs``, ``core`` — can import it without cycles.

Namespaces
----------

- ``engine.*`` — vertex execution (frontier, delivered edges, steals),
- ``io.*``     — SAFS request scheduling and merging,
- ``cache.*``  — the set-associative page cache,
- ``ssd.*`` / ``array.*`` — the device model and the striped array,
- ``msg.*`` / ``numa.*``  — message passing and NUMA accounting,
- ``faults.*`` / ``health.*`` / ``integrity.*`` / ``parity.*`` /
  ``scrub.*`` / ``write.*`` — the fault-injection and durability layers.
"""

# --- engine.* -----------------------------------------------------------
ENGINE_ACTIVE_VERTICES = "engine.active_vertices"
ENGINE_EDGES_DELIVERED = "engine.edges_delivered"
ENGINE_IO_REQUESTS = "engine.io_requests"
ENGINE_STOLEN_VERTICES = "engine.stolen_vertices"
ENGINE_VERTEX_PARTS = "engine.vertex_parts"
#: Async mode: priority rounds executed (sync runs never touch these).
ENGINE_ASYNC_ROUNDS = "engine.async_rounds"
#: Async mode: per-vertex residual/priority recomputations.
ENGINE_PRIORITY_UPDATES = "engine.priority_updates"
#: Async mode: the global residual sum, set at each round boundary (a
#: gauge-style counter like ``graph.compression_ratio``).
ENGINE_RESIDUAL = "engine.residual"
#: Async mode: eager in-round message flushes (deliveries that happened
#: before the round barrier because the buffer hit the flush threshold).
ENGINE_EAGER_FLUSHES = "engine.eager_flushes"

# --- io.* ---------------------------------------------------------------
IO_REQUESTS_ISSUED = "io.requests_issued"
IO_CPU_ISSUE_TIME = "io.cpu_issue_time"
IO_DISPATCHED = "io.dispatched"
IO_PAGES_REQUESTED = "io.pages_requested"
IO_PAGES_FETCHED = "io.pages_fetched"
IO_FULL_HITS = "io.full_hits"
IO_SIZE_1_PAGE = "io.size_1_page"
IO_SIZE_2_8_PAGES = "io.size_2_8_pages"
IO_SIZE_9_64_PAGES = "io.size_9_64_pages"
IO_SIZE_65PLUS_PAGES = "io.size_65plus_pages"

# --- cache.* ------------------------------------------------------------
CACHE_HITS = "cache.hits"
CACHE_MISSES = "cache.misses"
CACHE_INSERTIONS = "cache.insertions"
CACHE_EVICTIONS = "cache.evictions"
CACHE_INVALIDATIONS = "cache.invalidations"

# --- ssd.* / array.* ----------------------------------------------------
SSD_REQUESTS = "ssd.requests"
SSD_PAGES_READ = "ssd.pages_read"
SSD_BYTES_READ = "ssd.bytes_read"
ARRAY_REQUESTS = "array.requests"
ARRAY_PAGES_READ = "array.pages_read"
ARRAY_BYTES_READ = "array.bytes_read"

# --- graph.* ------------------------------------------------------------
#: Compressed edge-list bytes decoded (format v2 runs; v1 decodes nothing).
GRAPH_DECODE_BYTES = "graph.decode_bytes"
#: v1-equivalent bytes over actual on-SSD edge-file bytes (a set-once
#: gauge-style counter; 0 means the run used format v1).
GRAPH_COMPRESSION_RATIO = "graph.compression_ratio"

# --- msg.* / numa.* -----------------------------------------------------
MSG_SENT = "msg.sent"
MSG_DELIVERED = "msg.delivered"
MSG_ACTIVATIONS = "msg.activations"
NUMA_REMOTE_STEALS = "numa.remote_steals"
NUMA_REMOTE_MESSAGE_SHARE = "numa.remote_message_share"

# --- faults.* -----------------------------------------------------------
FAULTS_ABORTED_ITERATIONS = "faults.aborted_iterations"
FAULTS_DEAD_REQUESTS = "faults.dead_requests"
FAULTS_INVALIDATED_PAGES = "faults.invalidated_pages"
FAULTS_QUARANTINED_REQUESTS = "faults.quarantined_requests"
FAULTS_REROUTED_PAGES = "faults.rerouted_pages"
FAULTS_REROUTED_REQUESTS = "faults.rerouted_requests"
FAULTS_RETRIES = "faults.retries"
FAULTS_SPIKED_REQUESTS = "faults.spiked_requests"
FAULTS_STALL_TIME = "faults.stall_time"
FAULTS_STALLED_REQUESTS = "faults.stalled_requests"
FAULTS_TIMEOUTS = "faults.timeouts"
FAULTS_TRANSIENT_ERRORS = "faults.transient_errors"

# --- health.* / integrity.* / parity.* / scrub.* / write.* --------------
HEALTH_QUARANTINES = "health.quarantines"
HEALTH_DECLARED_FAILED = "health.declared_failed"
INTEGRITY_CHECKSUM_FAILURES = "integrity.checksum_failures"
PARITY_DOUBLE_FAULTS = "parity.double_faults"
PARITY_PAGES_RECONSTRUCTED = "parity.pages_reconstructed"
PARITY_PEER_READS = "parity.peer_reads"
PARITY_PEER_UNAVAILABLE = "parity.peer_unavailable"
PARITY_RECONSTRUCTIONS = "parity.reconstructions"
SCRUB_REBUILDS_STARTED = "scrub.rebuilds_started"
SCRUB_PAGES_READ = "scrub.pages_read"
SCRUB_PAGES_WRITTEN = "scrub.pages_written"
WRITE_BYTES = "write.bytes"
WRITE_HOST_PAGES = "write.host_pages"
WRITE_FLASH_PAGES_PROGRAMMED = "write.flash_pages_programmed"
WRITE_SECONDS = "write.seconds"

# --- safs.* (cross-query I/O sharing, see docs/io_sharing.md) -----------
#: Pages served by attaching to another query's in-flight device fetch
#: instead of re-issuing it (``InflightReadRegistry``).
SAFS_DEDUP_PAGES = "safs.dedup_pages"
#: Attach events (one per deduplicated miss run, however many pages).
SAFS_DEDUP_WAITS = "safs.dedup_waits"
#: Residual simulated seconds waiters spent for leaders' fetches to land.
SAFS_DEDUP_WAIT_SECONDS = "safs.dedup_wait_seconds"

# --- serve.* (the multi-tenant service layer) ---------------------------
SERVE_JOBS_ADMITTED = "serve.jobs_admitted"
SERVE_JOBS_COMPLETED = "serve.jobs_completed"
SERVE_JOBS_ABORTED = "serve.jobs_aborted"
SERVE_QUOTA_WAITS = "serve.quota_waits"
#: Overload control (see docs/overload.md): queries shed at the queue
#: caps, queued/running queries killed by deadline enforcement, and the
#: brownout state machine's activity over the run.
SERVE_SHED_TOTAL = "serve.shed_total"
SERVE_DEADLINE_ABORTS_TOTAL = "serve.deadline_aborts_total"
SERVE_BROWNOUT_TRANSITIONS = "serve.brownout_transitions"
SERVE_BROWNOUT_SECONDS = "serve.brownout_seconds"
SERVE_OVERLOAD_PEAK_QUEUE_DEPTH = "serve.overload_peak_queue_depth"
#: Result cache (see docs/io_sharing.md): repeat queries answered from a
#: cached output vector at admission time, misses that ran the engine,
#: outputs inserted, and entries dropped by TTL expiry or invalidation.
SERVE_RESULT_CACHE_HITS_TOTAL = "serve.result_cache_hits_total"
SERVE_RESULT_CACHE_MISSES_TOTAL = "serve.result_cache_misses_total"
SERVE_RESULT_CACHE_INSERTIONS_TOTAL = "serve.result_cache_insertions_total"
SERVE_RESULT_CACHE_EXPIRATIONS_TOTAL = "serve.result_cache_expirations_total"
#: Adaptive tenant cache sizing: rebalance decisions that moved capacity,
#: cache pages transferred between partitions, and pages evicted from
#: donors while shrinking.
SERVE_CACHE_REBALANCES = "serve.cache_rebalances"
SERVE_CACHE_PAGES_MOVED = "serve.cache_pages_moved"
SERVE_CACHE_REBALANCE_EVICTIONS = "serve.cache_rebalance_evictions"

#: Every counter name the stack may legitimately touch.
KNOWN_COUNTERS = frozenset(
    value
    for key, value in list(globals().items())
    if key.isupper() and isinstance(value, str) and "." in value
)

#: Counter *families*: per-tenant counters are named
#: ``<family>.<tenant>`` (tenant names are dot-free), so the family
#: prefix — not each member — is the registered constant, mirroring the
#: per-device histogram convention.
SERVE_TENANT_JOBS = "serve.tenant_jobs"
SERVE_TENANT_ABORTS = "serve.tenant_aborts"
SERVE_TENANT_BUSY_SECONDS = "serve.tenant_busy_seconds"
SERVE_TENANT_QUOTA_WAITS = "serve.tenant_quota_waits"
#: Overload-control families, per tenant: ``serve.shed.<tenant>`` counts
#: queue-cap sheds, ``serve.deadline_aborts.<tenant>`` counts queued
#: deadline drops plus running deadline cancellations, and
#: ``serve.brownout_degraded.<tenant>`` counts jobs admitted at reduced
#: fidelity during brownout.
SERVE_SHED = "serve.shed"
SERVE_DEADLINE_ABORTS = "serve.deadline_aborts"
SERVE_BROWNOUT_DEGRADED = "serve.brownout_degraded"
#: Result-cache hits per tenant (``serve.result_cache_hits.<tenant>``).
SERVE_RESULT_CACHE_HITS = "serve.result_cache_hits"

KNOWN_COUNTER_FAMILIES = frozenset(
    {
        SERVE_TENANT_JOBS,
        SERVE_TENANT_ABORTS,
        SERVE_TENANT_BUSY_SECONDS,
        SERVE_TENANT_QUOTA_WAITS,
        SERVE_SHED,
        SERVE_DEADLINE_ABORTS,
        SERVE_BROWNOUT_DEGRADED,
        SERVE_RESULT_CACHE_HITS,
    }
)

# --- histograms ---------------------------------------------------------
#: Per-device service latency (seconds); one histogram per device, named
#: ``ssd.service_seconds.<device name>``.
HIST_SSD_SERVICE_SECONDS = "ssd.service_seconds"
#: Requests already outstanding on the device queue at arrival.
HIST_SSD_QUEUE_DEPTH = "ssd.queue_depth"
#: Constituent requests folded into one merged request (§3.6).
HIST_IO_MERGE_RUN_LENGTH = "io.merge_run_length"
#: Retries spent before a per-device run completed.
HIST_IO_RETRIES_PER_REQUEST = "io.retries_per_request"
#: End-to-end query latency (arrival → completion, seconds); one
#: histogram per tenant, named ``serve.query_seconds.<tenant>``.
HIST_SERVE_QUERY_SECONDS = "serve.query_seconds"
#: Admission-queue wait (arrival → admission, seconds), per tenant.
HIST_SERVE_QUEUE_WAIT_SECONDS = "serve.queue_wait_seconds"
#: Queue age at the moment a query was shed (seconds), per tenant —
#: distinguishes shedding fresh arrivals (reject-newest) from killing
#: long-waiting work (reject-oldest / deadline expiry).
HIST_SERVE_SHED_AGE_SECONDS = "serve.shed_age_seconds"

#: Fixed ascending bucket upper bounds per histogram family; a value
#: above the last bound lands in the overflow bucket.
HISTOGRAM_BOUNDS = {
    HIST_SSD_SERVICE_SECONDS: (
        2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 5e-3, 2e-2,
    ),
    HIST_SSD_QUEUE_DEPTH: (0, 1, 2, 4, 8, 16, 32, 64),
    HIST_IO_MERGE_RUN_LENGTH: (1, 2, 4, 8, 16, 32, 64, 128),
    HIST_IO_RETRIES_PER_REQUEST: (0, 1, 2, 3, 4, 8),
    HIST_SERVE_QUERY_SECONDS: (
        1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1, 2e-1, 5e-1, 1.0,
    ),
    HIST_SERVE_QUEUE_WAIT_SECONDS: (
        1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0,
    ),
    HIST_SERVE_SHED_AGE_SECONDS: (
        0.0, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0,
    ),
}

# --- gauges (time series sampled at iteration barriers) -----------------
GAUGE_FRONTIER_SIZE = "engine.frontier_size"
GAUGE_CACHE_OCCUPANCY = "cache.occupancy_pages"
GAUGE_IN_FLIGHT = "io.in_flight_requests"

#: Gauges every armed *batch* run samples exactly once per iteration
#: barrier (the engine-loop invariant `tests/obs/test_spans.py` pins).
ENGINE_GAUGES = frozenset(
    {
        GAUGE_FRONTIER_SIZE,
        GAUGE_CACHE_OCCUPANCY,
        GAUGE_IN_FLIGHT,
    }
)

#: Serving-layer timeline gauges (see ``repro.obs.timeline``), sampled
#: at fixed DES-clock window boundaries by the armed timeline sampler.
#: The service-wide ones are plain gauges; the rest are per-tenant
#: *families* below.
GAUGE_SERVE_BROWNOUT_STATE = "serve.brownout_state_level"
GAUGE_SERVE_UNHEALTHY_FRACTION = "serve.unhealthy_device_fraction"
GAUGE_SERVE_GLOBAL_QUEUE_DEPTH = "serve.global_queue_depth"

KNOWN_GAUGES = ENGINE_GAUGES | frozenset(
    {
        GAUGE_SERVE_BROWNOUT_STATE,
        GAUGE_SERVE_UNHEALTHY_FRACTION,
        GAUGE_SERVE_GLOBAL_QUEUE_DEPTH,
    }
)

#: Per-cache-set hit rate, sampled as ``cache.set_hit_rate.<set index>``
#: when the observer is armed *and* the cache has per-set tracking
#: enabled.  A gauge *family* (like the per-device histograms): the
#: per-set names are derived, so the family prefix — not each member —
#: is the registered constant.
GAUGE_CACHE_SET_HIT_RATE = "cache.set_hit_rate"

#: Timeline gauge families, one series per tenant
#: (``<family>.<tenant>``), emitted at every closed sampling window:
#: completed-query throughput, windowed latency quantiles (streamed
#: through :class:`~repro.sim.stats.Histogram`), admission-queue depth
#: and quota occupancy (running jobs / ``max_concurrent``).
GAUGE_SERVE_WINDOW_THROUGHPUT = "serve.window_throughput_qps"
GAUGE_SERVE_WINDOW_P50 = "serve.window_latency_p50_s"
GAUGE_SERVE_WINDOW_P99 = "serve.window_latency_p99_s"
GAUGE_SERVE_QUEUE_DEPTH = "serve.queue_depth"
GAUGE_SERVE_QUOTA_OCCUPANCY = "serve.quota_occupancy"

#: Per-tenant cache-partition families (``<family>.<tenant>``), sampled
#: at timeline windows and by the cache rebalancer after each decision:
#: the tenant's share of total partitioned cache capacity and its
#: partition-level cumulative hit rate (see docs/io_sharing.md).
GAUGE_SERVE_CACHE_SHARE = "serve.cache_share"
GAUGE_SERVE_CACHE_HIT_RATE = "serve.cache_hit_rate"

KNOWN_GAUGE_FAMILIES = frozenset(
    {
        GAUGE_CACHE_SET_HIT_RATE,
        GAUGE_SERVE_WINDOW_THROUGHPUT,
        GAUGE_SERVE_WINDOW_P50,
        GAUGE_SERVE_WINDOW_P99,
        GAUGE_SERVE_QUEUE_DEPTH,
        GAUGE_SERVE_QUOTA_OCCUPANCY,
        GAUGE_SERVE_CACHE_SHARE,
        GAUGE_SERVE_CACHE_HIT_RATE,
    }
)


def histogram_bounds(name: str):
    """Bucket bounds for histogram ``name``.

    Per-device histograms are named ``<family>.<device>``; the family's
    bounds apply.  Raises ``KeyError`` for a name outside the registry —
    the fail-fast behaviour the registry exists for.
    """
    if name in HISTOGRAM_BOUNDS:
        return HISTOGRAM_BOUNDS[name]
    family = name.rsplit(".", 1)[0]
    return HISTOGRAM_BOUNDS[family]


def unknown_counters(names) -> list:
    """The subset of ``names`` outside the registry, sorted.

    A name is known when it is in :data:`KNOWN_COUNTERS` directly or its
    ``<family>.<member>`` prefix is in :data:`KNOWN_COUNTER_FAMILIES`
    (the per-tenant counters).
    """
    unknown = set(names) - KNOWN_COUNTERS
    return sorted(
        name
        for name in unknown
        if name.rsplit(".", 1)[0] not in KNOWN_COUNTER_FAMILIES
    )


def unknown_gauges(names) -> list:
    """The subset of gauge-series ``names`` outside the registry, sorted.

    Mirrors :func:`unknown_counters` for the gauge namespace: a name is
    known when it is in :data:`KNOWN_GAUGES` directly or its
    ``<family>.<member>`` prefix is in :data:`KNOWN_GAUGE_FAMILIES`
    (the per-tenant and per-cache-set series).
    """
    unknown = set(names) - KNOWN_GAUGES
    return sorted(
        name
        for name in unknown
        if name.rsplit(".", 1)[0] not in KNOWN_GAUGE_FAMILIES
    )
