"""Multi-window SLO burn-rate tracking for the serving layer.

Tenants declare objectives on their :class:`~repro.serve.tenants.TenantSpec`:

- a **latency objective** ``(slo_latency_s, slo_target)`` — at least
  ``slo_target`` of the tenant's queries should complete within
  ``slo_latency_s`` of arrival (a shed or aborted query can never meet
  it, so it counts against the budget too);
- an **availability objective** ``slo_availability`` — at least that
  fraction of offered queries should be *served* at all (not shed at
  the queue caps, not aborted).

The :class:`SLOTracker` consumes the service's per-query outcome stream
on the simulated clock and maintains, per objective, a **fast** and a
**slow** sliding window (the SRE multi-window pattern: the fast window
catches a cliff quickly, the slow window keeps a brief blip from
paging).  Each window's *burn rate* is::

    burn = bad_fraction_in_window / (1 - target)

i.e. how many times faster than budgeted the error budget is burning;
``burn == 1`` exactly exhausts the budget over the objective period.  A
**burn-start** event fires when *both* windows burn at or above the
threshold, and the matching **burn-stop** fires when the fast window
falls back below it — hysteresis for free, since the slow window keeps
the condition from re-arming on a single good query.  Events carry the
DES timestamp and both burn rates, so they interleave deterministically
with the overload controller's shed/brownout events; two runs of the
same seed produce byte-identical event logs.

``python -m repro.obs.slo REPORT.json`` validates a
:data:`SLO_SCHEMA` document written by ``repro slo`` or the bench
harness, mirroring ``python -m repro.obs.report``.
"""

import json
import sys
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

#: Schema tag of the SLO report document (validated like
#: ``repro.profile/v1``).
SLO_SCHEMA = "repro.slo/v1"

#: Objective kinds, in display order.
OBJECTIVE_KINDS = ("latency", "availability")


@dataclass(frozen=True)
class SLOConfig:
    """Burn-rate tracking knobs (simulated seconds)."""

    #: Fast sliding window: catches sharp error-budget cliffs.
    fast_window_s: float = 0.02
    #: Slow sliding window: confirms the burn is sustained.
    slow_window_s: float = 0.1
    #: Burn rate at or above which (in *both* windows) a burn starts.
    burn_threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.fast_window_s <= 0.0:
            raise ValueError("fast_window_s must be positive")
        if self.slow_window_s < self.fast_window_s:
            raise ValueError("slow_window_s must be >= fast_window_s")
        if self.burn_threshold <= 0.0:
            raise ValueError("burn_threshold must be positive")


@dataclass(frozen=True)
class SLOEvent:
    """One burn-rate threshold crossing, in decision order.

    ``kind`` is ``"burn-start"`` (both windows at/over the threshold)
    or ``"burn-stop"`` (the fast window fell back under it).
    """

    time: float
    tenant: str
    objective: str
    kind: str
    fast_burn: float
    slow_burn: float

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "tenant": self.tenant,
            "objective": self.objective,
            "kind": self.kind,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
        }


class _Window:
    """A sliding count of good/bad outcomes over simulated time."""

    __slots__ = ("span", "entries", "bad")

    def __init__(self, span: float) -> None:
        self.span = span
        self.entries = deque()  # (time, is_bad)
        self.bad = 0

    def push(self, time: float, is_bad: bool) -> None:
        self.entries.append((time, is_bad))
        if is_bad:
            self.bad += 1
        horizon = time - self.span
        while self.entries and self.entries[0][0] < horizon:
            _, old_bad = self.entries.popleft()
            if old_bad:
                self.bad -= 1

    def bad_fraction(self) -> float:
        n = len(self.entries)
        return self.bad / n if n else 0.0


class _ObjectiveState:
    """One (tenant, objective) pair's burn-tracking state."""

    __slots__ = (
        "threshold", "target", "budget", "fast", "slow", "good", "bad",
        "burning", "burn_since", "burn_seconds", "peak_fast", "peak_slow",
    )

    def __init__(self, threshold: float, target: float, config: SLOConfig) -> None:
        self.threshold = threshold
        self.target = target
        self.budget = 1.0 - target
        self.fast = _Window(config.fast_window_s)
        self.slow = _Window(config.slow_window_s)
        self.good = 0
        self.bad = 0
        self.burning = False
        self.burn_since = 0.0
        self.burn_seconds = 0.0
        self.peak_fast = 0.0
        self.peak_slow = 0.0


class SLOTracker:
    """Tracks every declared objective over one service run.

    Fed by :meth:`~repro.serve.service.GraphService.serve` behind a
    single ``slo is not None`` check (the spans-style zero-cost hook
    discipline): a service whose tenants declare no objectives never
    constructs one.  Purely observational — it reads the outcome stream
    but never touches the shared counters, so an SLO-tracked run's
    counter snapshot stays bit-identical to an untracked one.
    """

    def __init__(
        self,
        tenants: Mapping[str, object],
        config: Optional[SLOConfig] = None,
    ) -> None:
        self.config = config or SLOConfig()
        self.events: List[SLOEvent] = []
        #: Monotone high-water clock.  The service finalizes jobs in
        #: event-loop order, whose finish times are *not* globally
        #: monotone; clamping each sample to the high-water keeps the
        #: sliding windows and the event log time-ordered (the same
        #: attribution policy as ``repro.obs.timeline``).
        self._clock = 0.0
        #: ``(tenant, objective)`` → state, insertion-ordered by the
        #: (sorted) tenant walk so iteration is deterministic.
        self._states: Dict[Tuple[str, str], _ObjectiveState] = {}
        for name in sorted(tenants):
            spec = tenants[name]
            objectives = getattr(spec, "slo_objectives", {})
            for kind in OBJECTIVE_KINDS:
                if kind in objectives:
                    threshold, target = objectives[kind]
                    self._states[(name, kind)] = _ObjectiveState(
                        threshold, target, self.config
                    )

    @property
    def active(self) -> bool:
        """Whether any tenant declared any objective."""
        return bool(self._states)

    # ------------------------------------------------------------------
    # The outcome stream
    # ------------------------------------------------------------------

    def record(
        self,
        tenant: str,
        time: float,
        outcome: str,
        latency: Optional[float] = None,
    ) -> None:
        """Feed one query outcome at simulated ``time``.

        ``outcome`` is ``"completed"``, ``"aborted"`` or ``"shed"``;
        ``latency`` is the arrival-to-finish latency for completed
        queries.  Badness per objective:

        - latency: bad unless completed within the threshold (a shed or
          aborted query never met it);
        - availability: bad unless completed.
        """
        if time > self._clock:
            self._clock = time
        time = self._clock
        for kind in OBJECTIVE_KINDS:
            state = self._states.get((tenant, kind))
            if state is None:
                continue
            if kind == "latency":
                is_bad = outcome != "completed" or (
                    latency is None or latency > state.threshold
                )
            else:
                is_bad = outcome != "completed"
            if is_bad:
                state.bad += 1
            else:
                state.good += 1
            state.fast.push(time, is_bad)
            state.slow.push(time, is_bad)
            self._advance(tenant, kind, state, time)

    def _advance(
        self, tenant: str, kind: str, state: _ObjectiveState, time: float
    ) -> None:
        fast_burn = state.fast.bad_fraction() / state.budget
        slow_burn = state.slow.bad_fraction() / state.budget
        if fast_burn > state.peak_fast:
            state.peak_fast = fast_burn
        if slow_burn > state.peak_slow:
            state.peak_slow = slow_burn
        threshold = self.config.burn_threshold
        if not state.burning:
            if fast_burn >= threshold and slow_burn >= threshold:
                state.burning = True
                state.burn_since = time
                self.events.append(
                    SLOEvent(time, tenant, kind, "burn-start", fast_burn, slow_burn)
                )
        elif fast_burn < threshold:
            state.burning = False
            state.burn_seconds += max(0.0, time - state.burn_since)
            self.events.append(
                SLOEvent(time, tenant, kind, "burn-stop", fast_burn, slow_burn)
            )

    def finish(self, now: float) -> None:
        """Close time-in-burn accounting at the end of the run."""
        for state in self._states.values():
            if state.burning:
                state.burn_seconds += max(0.0, now - state.burn_since)
                state.burn_since = now

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def summary(self) -> dict:
        """JSON-ready tracker outcome (the deterministic event log
        included, so the byte-identity tests can serialize it)."""
        tenants: Dict[str, dict] = {}
        for (name, kind), state in self._states.items():
            total = state.good + state.bad
            tenants.setdefault(name, {})[kind] = {
                "threshold_s": state.threshold,
                "target": state.target,
                "good": state.good,
                "bad": state.bad,
                "compliance": state.good / total if total else 1.0,
                "peak_fast_burn": state.peak_fast,
                "peak_slow_burn": state.peak_slow,
                "burn_seconds": state.burn_seconds,
                "burning": state.burning,
            }
        return {
            "fast_window_s": self.config.fast_window_s,
            "slow_window_s": self.config.slow_window_s,
            "burn_threshold": self.config.burn_threshold,
            "tenants": tenants,
            "events": [event.to_dict() for event in self.events],
        }


# ----------------------------------------------------------------------
# The repro.slo/v1 report document
# ----------------------------------------------------------------------

def build_slo_report(
    report,
    tracker: Optional[SLOTracker] = None,
    sampler=None,
    label: str = "",
) -> dict:
    """A :data:`SLO_SCHEMA` document from one serve run.

    ``report`` is the :class:`~repro.serve.service.ServiceReport`;
    ``tracker`` the run's :class:`SLOTracker` (``None`` when no tenant
    declared objectives); ``sampler`` the run's armed
    :class:`~repro.obs.timeline.TimelineSampler` (``None`` = no
    timeline section).  Overload events ride along from
    ``report.overload`` so the burn-rate crossings can be read against
    the shed/brownout decisions they explain.
    """
    slo = tracker.summary() if tracker is not None else report.slo
    overload_events = []
    if report.overload is not None:
        overload_events = list(report.overload.get("events", []))
    return {
        "schema": SLO_SCHEMA,
        "label": label,
        "policy": report.policy,
        "duration_s": report.duration_s,
        "offered": report.offered,
        "completed": report.completed,
        "aborted": report.aborted,
        "shed": report.shed,
        "slo": slo,
        "overload_events": overload_events,
        "timeline": list(sampler.snapshots) if sampler is not None else [],
    }


def validate_slo_report(doc: dict) -> List[str]:
    """Schema + consistency checks; returns problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["report is not a JSON object"]
    if doc.get("schema") != SLO_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {SLO_SCHEMA!r}"
        )
    for key in (
        "duration_s", "offered", "completed", "aborted", "shed",
        "slo", "overload_events", "timeline",
    ):
        if key not in doc:
            problems.append(f"missing key {key!r}")
    if problems:
        return problems
    slo = doc["slo"]
    if slo is not None:
        for key in ("fast_window_s", "slow_window_s", "tenants", "events"):
            if key not in slo:
                problems.append(f"slo section missing {key!r}")
                return problems
        last = float("-inf")
        for event in slo["events"]:
            for key in ("time", "tenant", "objective", "kind", "fast_burn", "slow_burn"):
                if key not in event:
                    problems.append(f"slo event missing {key!r}")
                    return problems
            if event["time"] < last:
                problems.append("slo events are not time-ordered")
                return problems
            last = event["time"]
        for name, objectives in slo["tenants"].items():
            for kind, row in objectives.items():
                for key in (
                    "target", "good", "bad", "compliance",
                    "peak_fast_burn", "peak_slow_burn", "burn_seconds",
                ):
                    if key not in row:
                        problems.append(f"{name}/{kind} missing {key!r}")
                        return problems
                if not 0.0 <= row["compliance"] <= 1.0:
                    problems.append(
                        f"{name}/{kind} compliance {row['compliance']!r} "
                        "outside [0, 1]"
                    )
    for row in doc["timeline"]:
        for key in (
            "window", "start_s", "end_s", "tenant", "completed",
            "throughput_qps", "latency_p50_s", "latency_p99_s",
            "queue_depth", "quota_occupancy", "brownout_state",
            "unhealthy_fraction",
        ):
            if key not in row:
                problems.append(f"timeline row missing {key!r}")
                return problems
    served = doc["completed"] + doc["aborted"] + doc["shed"]
    if served != doc["offered"]:
        problems.append(
            f"accounting broken: completed + aborted + shed = {served}, "
            f"offered = {doc['offered']}"
        )
    if doc["timeline"]:
        window_total = sum(row["completed"] for row in doc["timeline"])
        if window_total != doc["completed"]:
            problems.append(
                f"timeline windows sum to {window_total} completed "
                f"queries, the report says {doc['completed']}"
            )
    return problems


def format_slo_report(doc: dict) -> str:
    """A fixed-width text rendering of the burn-rate report."""
    lines = []
    label = doc.get("label") or "slo report"
    lines.append(
        f"{label}: {doc['completed']}/{doc['offered']} completed, "
        f"{doc['aborted']} aborted, {doc['shed']} shed over "
        f"{doc['duration_s'] * 1e3:.3f} simulated ms"
    )
    slo = doc.get("slo")
    if slo:
        lines.append(
            f"{'tenant':<12} {'objective':<13} {'target':>7} {'met':>6} "
            f"{'missed':>6} {'compliance':>10} {'peak fast':>10} "
            f"{'peak slow':>10} {'burn ms':>9}"
        )
        for name, objectives in sorted(slo["tenants"].items()):
            for kind in OBJECTIVE_KINDS:
                row = objectives.get(kind)
                if row is None:
                    continue
                lines.append(
                    f"{name:<12} {kind:<13} {row['target']:>7.3f} "
                    f"{row['good']:>6} {row['bad']:>6} "
                    f"{row['compliance']:>10.4f} {row['peak_fast_burn']:>10.2f} "
                    f"{row['peak_slow_burn']:>10.2f} "
                    f"{row['burn_seconds'] * 1e3:>9.3f}"
                )
        merged = [
            ("slo", e["time"], f"{e['tenant']}/{e['objective']} {e['kind']} "
             f"(fast {e['fast_burn']:.2f}, slow {e['slow_burn']:.2f})")
            for e in slo["events"]
        ] + [
            ("overload", e["time"], f"{e['kind']} {e.get('tenant') or '-'} "
             f"{e.get('detail', '')}".rstrip())
            for e in doc.get("overload_events", [])
        ]
        merged.sort(key=lambda row: (row[1], row[0]))
        if merged:
            lines.append(f"{len(merged)} events (burn-rate + overload, merged):")
            for source, time, text in merged:
                lines.append(f"  t={time * 1e3:9.3f}ms [{source:>8}] {text}")
    return "\n".join(lines)


def query_outcome(record) -> Tuple[str, Optional[float]]:
    """``(outcome, latency)`` for one finished
    :class:`~repro.serve.service.JobRecord` — the tracker's input shape
    (sheds never become records; the service feeds those directly)."""
    return ("completed" if record.ok else "aborted"), record.latency


def main(argv: Optional[List[str]] = None) -> int:
    """Validate an SLO report: ``python -m repro.obs.slo FILE``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.obs.slo REPORT.json", file=sys.stderr)
        return 2
    try:
        doc = json.loads(open(argv[0]).read())
    except (OSError, ValueError) as exc:
        print(f"cannot read {argv[0]}: {exc}", file=sys.stderr)
        return 1
    problems = validate_slo_report(doc)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    events = len(doc["slo"]["events"]) if doc.get("slo") else 0
    print(
        f"{argv[0]}: valid {SLO_SCHEMA} report, "
        f"{len(doc['timeline'])} timeline rows, {events} burn events"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
