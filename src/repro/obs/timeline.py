"""Deterministic windowed per-tenant snapshots of a serving run.

The serving layer's ``serve.*`` counters are flushed once, after the
last job (the bit-identity contract), so by themselves they can only
say what a run *totalled* — never when the queue built up, when
brownout engaged, or which tenant's p99 fell off a cliff mid-run.  The
:class:`TimelineSampler` closes that gap: bound to a
:class:`~repro.serve.service.GraphService`, it divides the simulated
clock into fixed windows and, as the event loop advances, emits one
snapshot row per tenant per window:

- completed/aborted counts and windowed throughput (queries/s);
- windowed p50/p99 query latency, streamed through a fresh
  :class:`~repro.sim.stats.Histogram` per window (the same bucket
  layout — and therefore the same interpolation semantics — as the
  end-of-run ``serve.query_seconds`` histograms);
- per-tenant queue depth and quota occupancy, global queue depth;
- the overload state machine's current state and the unhealthy-device
  fraction.

Every row is also sampled into the shared
:class:`~repro.sim.stats.StatsCollector` as the registry-declared
gauge families (``serve.window_throughput_qps.<tenant>``, …).  Gauge
series live outside counter snapshots/diffs, so an armed sampler never
perturbs the byte-identical ``serve.*`` final counters — the same
``obs is not None`` zero-cost discipline as ``repro.obs.spans``.

Determinism: the sampler is driven purely by the service's DES clock.
The event-loop frontier is *not* monotone (a newly admitted job can
start earlier than the currently slowest runner), so the sampler keeps
a monotone high-water clock and closes window ``k`` the first time the
high-water crosses ``(k + 1) * interval_s``.  A completion observed
after its window already closed is attributed to the currently open
window — every completion is counted in exactly one window, which is
what makes windowed throughput sum exactly to the
:class:`~repro.serve.service.ServiceReport` totals (a pinned property
test).  Two runs of the same seed produce byte-identical snapshot
streams.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs import registry
from repro.sim.stats import Histogram


@dataclass(frozen=True)
class TimelineConfig:
    """Sampler knobs (simulated seconds)."""

    #: Window length.  The default matches the serving benches' ~5 ms
    #: query latencies: a handful of queries per window per tenant.
    interval_s: float = 0.005

    def __post_init__(self) -> None:
        if self.interval_s <= 0.0:
            raise ValueError("interval_s must be positive")


class TimelineSampler:
    """Streams windowed per-tenant snapshots from one serve run.

    Construct, pass to :class:`~repro.serve.service.GraphService`
    (which calls :meth:`bind`), run :meth:`~GraphService.serve`, then
    read :attr:`snapshots` / :meth:`to_markdown` — or the gauge series
    the sampler mirrored into the service's stats collector.
    """

    def __init__(self, config: Optional[TimelineConfig] = None) -> None:
        self.config = config or TimelineConfig()
        #: Closed windows, one dict row per tenant per window, in order.
        self.snapshots: List[dict] = []
        self._service = None
        self._tenants: List[str] = []
        self._bounds = registry.histogram_bounds(
            registry.HIST_SERVE_QUERY_SECONDS
        )
        self._window = 0
        self._high_water = 0.0
        #: End of the currently open window.  The service's hot loop
        #: compares its frontier against this before paying for a
        #: :meth:`note_time` call — one float test per event-loop pass.
        self.next_boundary_s = self.config.interval_s
        self._completed: Dict[str, int] = {}
        self._aborted: Dict[str, int] = {}
        self._hists: Dict[str, Histogram] = {}

    @property
    def armed(self) -> bool:
        """Whether :meth:`bind` attached a service."""
        return self._service is not None

    def bind(self, service) -> None:
        """Attach to ``service`` (one sampler serves one run)."""
        self._service = service
        self._tenants = sorted(service.tenants)
        self._reset_window()

    def _reset_window(self) -> None:
        self._completed = {name: 0 for name in self._tenants}
        self._aborted = {name: 0 for name in self._tenants}
        self._hists = {name: Histogram(self._bounds) for name in self._tenants}

    # ------------------------------------------------------------------
    # Hooks (called by the service event loop)
    # ------------------------------------------------------------------

    def note_time(self, now: float) -> None:
        """Advance the monotone high-water clock to ``now`` (the event
        loop's frontier), closing every window it crossed."""
        if now > self._high_water:
            self._high_water = now
        while self._high_water >= (self._window + 1) * self.config.interval_s:
            self._close_window()

    def note_completion(
        self, tenant: str, finish_time: float, latency: float, ok: bool
    ) -> None:
        """Record one finished query.

        Windows are rolled forward to cover ``finish_time`` first; a
        late completion (finishing inside an already-closed window,
        which the non-monotone frontier permits) lands in the currently
        open window instead — attributed once, never dropped.
        """
        if finish_time > self._high_water:
            self._high_water = finish_time
        while finish_time >= (self._window + 1) * self.config.interval_s:
            self._close_window()
        if ok:
            self._completed[tenant] += 1
            self._hists[tenant].observe(latency)
        else:
            self._aborted[tenant] += 1

    def finish(self, end: float) -> None:
        """Close out the run at simulated ``end``: every window the run
        reached, plus the final partial window when it holds anything
        (or when the run was too short to close any window at all)."""
        if self._service is None:
            return
        self.note_time(end)
        if (
            self._window == 0
            or any(self._completed.values())
            or any(self._aborted.values())
        ):
            self._close_window()

    # ------------------------------------------------------------------
    # Window emission
    # ------------------------------------------------------------------

    def _close_window(self) -> None:
        # Lazy import: obs must stay importable without serve (and the
        # state tuple is only needed once a window actually closes).
        from repro.serve.overload import OVERLOAD_STATES

        service = self._service
        interval = self.config.interval_s
        start = self._window * interval
        end = start + interval
        telemetry = getattr(service, "telemetry", None)
        waiting = telemetry.waiting if telemetry is not None else []
        depth = {name: 0 for name in self._tenants}
        for waiter in waiting:
            depth[waiter.arrival.tenant] += 1
        if service.overload is not None:
            state = service.overload.state
            level = float(OVERLOAD_STATES.index(state))
        else:
            state = "off"
            level = 0.0
        unhealthy = service._unhealthy_fraction(end)
        stats = service.stats
        # Partition-level cache gauges: each partitioned tenant's share
        # of the total partitioned capacity (which the serve-layer
        # rebalancer moves mid-run) and its own cumulative hit rate —
        # the per-instance tallies, not the shared counters, which
        # aggregate every cache on the collector.
        partitions = getattr(service, "cache_partitions", None) or {}
        total_pages = sum(
            cache.set_capacity_pages for cache in partitions.values()
        )
        stats.sample(registry.GAUGE_SERVE_BROWNOUT_STATE, end, level)
        stats.sample(registry.GAUGE_SERVE_UNHEALTHY_FRACTION, end, unhealthy)
        stats.sample(
            registry.GAUGE_SERVE_GLOBAL_QUEUE_DEPTH, end, float(len(waiting))
        )
        for name in self._tenants:
            hist = self._hists[name]
            completed = self._completed[name]
            # Nominal-interval rate, also for the final partial window
            # (a time-varying divisor would make the last row's rate
            # incomparable with every other row's).
            throughput = completed / interval
            p50 = hist.quantile(0.50)
            p99 = hist.quantile(0.99)
            occupancy = (
                service.admission.running[name]
                / service.tenants[name].max_concurrent
            )
            self.snapshots.append(
                {
                    "window": self._window,
                    "start_s": start,
                    "end_s": end,
                    "tenant": name,
                    "completed": completed,
                    "aborted": self._aborted[name],
                    "throughput_qps": throughput,
                    "latency_p50_s": p50,
                    "latency_p99_s": p99,
                    "queue_depth": depth[name],
                    "quota_occupancy": occupancy,
                    "brownout_state": state,
                    "unhealthy_fraction": unhealthy,
                }
            )
            stats.sample(
                f"{registry.GAUGE_SERVE_WINDOW_THROUGHPUT}.{name}",
                end,
                throughput,
            )
            stats.sample(f"{registry.GAUGE_SERVE_WINDOW_P50}.{name}", end, p50)
            stats.sample(f"{registry.GAUGE_SERVE_WINDOW_P99}.{name}", end, p99)
            stats.sample(
                f"{registry.GAUGE_SERVE_QUEUE_DEPTH}.{name}",
                end,
                float(depth[name]),
            )
            stats.sample(
                f"{registry.GAUGE_SERVE_QUOTA_OCCUPANCY}.{name}",
                end,
                occupancy,
            )
            partition = partitions.get(name)
            if partition is not None:
                stats.sample(
                    f"{registry.GAUGE_SERVE_CACHE_SHARE}.{name}",
                    end,
                    partition.set_capacity_pages / total_pages
                    if total_pages
                    else 0.0,
                )
                stats.sample(
                    f"{registry.GAUGE_SERVE_CACHE_HIT_RATE}.{name}",
                    end,
                    partition.hit_rate(),
                )
        self._window += 1
        self.next_boundary_s = (self._window + 1) * interval
        self._reset_window()

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def to_markdown(self) -> str:
        """The snapshot stream as a GitHub-flavoured Markdown table."""
        lines = [
            "| window | span (ms) | tenant | done | qps | p50 (ms) | "
            "p99 (ms) | queue | quota | state | unhealthy |",
            "|---|---|---|---|---|---|---|---|---|---|---|",
        ]
        for row in self.snapshots:
            lines.append(
                f"| {row['window']} "
                f"| {row['start_s'] * 1e3:.1f}–{row['end_s'] * 1e3:.1f} "
                f"| {row['tenant']} "
                f"| {row['completed']} "
                f"| {row['throughput_qps']:.0f} "
                f"| {row['latency_p50_s'] * 1e3:.2f} "
                f"| {row['latency_p99_s'] * 1e3:.2f} "
                f"| {row['queue_depth']} "
                f"| {row['quota_occupancy']:.2f} "
                f"| {row['brownout_state']} "
                f"| {row['unhealthy_fraction']:.2f} |"
            )
        return "\n".join(lines)
