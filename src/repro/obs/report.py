"""Turn a trace into a per-iteration, per-layer simulated-time profile.

The profile decomposes each iteration's wall span into four layers:

- **compute** — the mean per-worker CPU-busy delta (computation that ran
  while I/O was in flight counts here, which is exactly the overlap the
  paper's engine is designed to create);
- **queue** — time requests waited in device queues;
- **service** — time devices spent transferring data;
- **recovery** — retries, backoff waits and parity reconstruction work.

The non-compute remainder of the span (the *stall*) is allocated across
queue/service/recovery proportionally to the device-seconds the tracer
measured for each, so the four layers sum exactly to the iteration span
and the totals sum to the simulated runtime (within :data:`TICK_SECONDS`,
one DES tick of float slack — validated by :func:`validate_profile`).

``python -m repro.obs.report PROFILE.json`` validates a profile document
written by ``repro profile`` or the bench harness.
"""

import json
import sys
from typing import Dict, List, Optional

#: Schema tag of the profile document.
PROFILE_SCHEMA = "repro.profile/v1"

#: One DES tick: the float tolerance the breakdown must sum within.
TICK_SECONDS = 1e-9

#: The four layers, in display order.
LAYERS = ("compute", "queue", "service", "recovery")


def build_profile(observer, label: str = "") -> dict:
    """A :data:`PROFILE_SCHEMA` document from an armed run's observer."""
    iterations: List[dict] = []
    totals = {layer: 0.0 for layer in LAYERS}
    runtime = 0.0
    for row in observer.iterations:
        span = row["end"] - row["start"]
        workers = row["workers"]
        compute = row["busy_sum"] / workers if workers else 0.0
        if compute > span:
            compute = span
        stall = span - compute
        weights = (row["queue_s"], row["service_s"], row["recovery_s"])
        total_weight = weights[0] + weights[1] + weights[2]
        if stall > 0.0 and total_weight > 0.0:
            queue = stall * weights[0] / total_weight
            service = stall * weights[1] / total_weight
            recovery = stall - queue - service
        else:
            # No device activity measured: the whole span is compute
            # (barrier overhead and idle waits included).
            compute = span
            queue = service = recovery = 0.0
        iterations.append(
            {
                "iteration": row["iteration"],
                "start_s": row["start"],
                "end_s": row["end"],
                "frontier": row["frontier"],
                "compute_s": compute,
                "queue_s": queue,
                "service_s": service,
                "recovery_s": recovery,
            }
        )
        totals["compute"] += compute
        totals["queue"] += queue
        totals["service"] += service
        totals["recovery"] += recovery
        runtime = row["end"]
    return {
        "schema": PROFILE_SCHEMA,
        "label": label,
        "runtime_s": runtime,
        "iterations": iterations,
        "totals": {f"{layer}_s": totals[layer] for layer in LAYERS},
    }


def validate_profile(profile: dict) -> List[str]:
    """Schema + arithmetic checks; returns a list of problems (empty = ok)."""
    problems: List[str] = []
    if not isinstance(profile, dict):
        return ["profile is not a JSON object"]
    if profile.get("schema") != PROFILE_SCHEMA:
        problems.append(
            f"schema is {profile.get('schema')!r}, expected {PROFILE_SCHEMA!r}"
        )
    for key in ("runtime_s", "iterations", "totals"):
        if key not in profile:
            problems.append(f"missing key {key!r}")
    if problems:
        return problems
    totals = profile["totals"]
    for layer in LAYERS:
        if f"{layer}_s" not in totals:
            problems.append(f"totals missing {layer}_s")
    rows = profile["iterations"]
    layer_keys = tuple(f"{layer}_s" for layer in LAYERS)
    for row in rows:
        for key in ("iteration", "start_s", "end_s") + layer_keys:
            if key not in row:
                problems.append(f"iteration row missing {key!r}")
                return problems
        span = row["end_s"] - row["start_s"]
        total = sum(row[key] for key in layer_keys)
        if abs(total - span) > TICK_SECONDS:
            problems.append(
                f"iteration {row['iteration']}: layers sum to {total!r}, "
                f"span is {span!r}"
            )
    if rows:
        # Iterations tile [0, runtime]: each starts at its predecessor's
        # barrier, so the totals must sum to the simulated runtime.
        grand = sum(sum(row[key] for key in layer_keys) for row in rows)
        budget = TICK_SECONDS * (len(rows) + 1)
        if abs(grand - profile["runtime_s"]) > budget:
            problems.append(
                f"totals sum to {grand!r}, runtime is {profile['runtime_s']!r}"
            )
    return problems


def format_profile(profile: dict) -> str:
    """A fixed-width text rendering of the breakdown."""
    lines = []
    label = profile.get("label") or "profile"
    lines.append(f"{label}: {profile['runtime_s']:.6f}s simulated over "
                 f"{len(profile['iterations'])} iterations")
    header = f"{'iter':>4} {'span_ms':>10}" + "".join(
        f" {layer + '_ms':>12}" for layer in LAYERS
    )
    lines.append(header)
    for row in profile["iterations"]:
        span = row["end_s"] - row["start_s"]
        lines.append(
            f"{row['iteration']:>4} {span * 1e3:>10.4f}"
            + "".join(f" {row[f'{layer}_s'] * 1e3:>12.4f}" for layer in LAYERS)
        )
    totals = profile["totals"]
    runtime = profile["runtime_s"]
    parts = []
    for layer in LAYERS:
        value = totals[f"{layer}_s"]
        share = value / runtime if runtime > 0 else 0.0
        parts.append(f"{layer} {value * 1e3:.4f}ms ({share:.1%})")
    lines.append("totals: " + ", ".join(parts))
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Validate a profile document: ``python -m repro.obs.report FILE``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.obs.report PROFILE.json", file=sys.stderr)
        return 2
    try:
        profile = json.loads(open(argv[0]).read())
    except (OSError, ValueError) as exc:
        print(f"cannot read {argv[0]}: {exc}", file=sys.stderr)
        return 1
    problems = validate_profile(profile)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    print(
        f"{argv[0]}: valid {PROFILE_SCHEMA} profile, "
        f"{len(profile['iterations'])} iterations, "
        f"runtime {profile['runtime_s']:.6f}s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
