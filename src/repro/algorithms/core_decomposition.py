"""Full k-core decomposition: a core number for every vertex (extension).

Extends :mod:`repro.algorithms.kcore` (single-k membership) to the whole
decomposition by iterated peeling: peel at ``k = 1, 2, ...`` until the
graph empties; a vertex's core number is the largest ``k`` whose core
contains it.  Each peel level is one engine run over the *surviving*
subgraph only — the active sets shrink fast, matching the selective-I/O
strength of the engine.

Operates on undirected images, like :mod:`kcore`.
"""

from typing import Tuple

import numpy as np

from repro.algorithms.bc import merge_results
from repro.core.engine import GraphEngine, RunResult
from repro.core.vertex_program import GraphContext, VertexProgram
from repro.graph.page_vertex import PageVertex
from repro.graph.types import EdgeType


class _PeelProgram(VertexProgram):
    """One peel level: remove alive vertices with remaining degree < k."""

    edge_type = EdgeType.OUT
    combiner = "sum"
    state_bytes_per_vertex = 9  # alive + remaining degree + core number

    def __init__(self, alive: np.ndarray, remaining: np.ndarray, k: int) -> None:
        self.alive = alive
        self.remaining = remaining
        self.k = k

    def run(self, g: GraphContext, vertex: int) -> None:
        if self.alive[vertex] and self.remaining[vertex] < self.k:
            self.alive[vertex] = False
            g.request_self(vertex, EdgeType.OUT)

    def run_on_vertex(self, g: GraphContext, vertex: int, page_vertex: PageVertex) -> None:
        neighbors = page_vertex.read_edges()
        if neighbors.size:
            g.send_message(neighbors, 1.0)

    def run_on_message(self, g: GraphContext, vertex: int, value: float) -> None:
        if self.alive[vertex]:
            self.remaining[vertex] -= int(round(value))
            g.activate(np.asarray([vertex]))


def core_decomposition(engine: GraphEngine) -> Tuple[np.ndarray, RunResult]:
    """Core numbers for every vertex of an undirected image.

    Returns ``(core_numbers, merged_result)``; isolated vertices have
    core number 0.
    """
    image = engine.image
    if image.directed:
        raise ValueError("core decomposition expects an undirected image")
    num_vertices = image.num_vertices
    degrees = image.out_csr.degrees().astype(np.int64)
    # Self-loops do not contribute to core degree.
    for vertex in range(num_vertices):
        neighbors = image.out_csr.neighbors(vertex)
        if neighbors.size and np.any(neighbors == vertex):
            degrees[vertex] -= 1

    core = np.zeros(num_vertices, dtype=np.int64)
    alive = np.ones(num_vertices, dtype=bool)
    remaining = degrees.copy()
    total: RunResult = None
    k = 1
    while alive.any():
        program = _PeelProgram(alive, remaining, k)
        result = engine.run(program, initial_active=np.nonzero(alive)[0])
        total = result if total is None else merge_results(total, result)
        survivors = np.nonzero(alive)[0]
        core[survivors] = k
        k += 1
    return core, total
