"""Breadth-first search (§4, Figure 4).

The paper's canonical example: an unvisited active vertex requests its own
out-edge list in ``run`` and activates its neighbors in ``run_on_vertex``.
Only out-edges are read.

Also provided: direction-optimizing BFS (Beamer et al. [3]), the algorithm
Galois uses.  §5.2 explains why FlashGraph does *not* use it in
semi-external memory — the bottom-up phase reads in-edge lists too,
inflating the bytes read from SSDs — so we implement it both to reproduce
Galois's advantage (Figure 10) and to let the ablation benches demonstrate
the paper's argument.
"""

from typing import Optional, Tuple

import numpy as np

from repro.core.engine import GraphEngine, RunResult
from repro.core.vertex_program import GraphContext, VertexProgram
from repro.graph.page_vertex import PageVertex
from repro.graph.types import EdgeType


class BFSProgram(VertexProgram):
    """Level-synchronous top-down BFS."""

    edge_type = EdgeType.OUT
    combiner = None
    state_bytes_per_vertex = 1  # one "visited" byte, as in the paper
    checkpoint_fields = ("visited", "level")

    def __init__(self, num_vertices: int) -> None:
        self.visited = np.zeros(num_vertices, dtype=bool)
        self.level = np.full(num_vertices, -1, dtype=np.int64)

    def run(self, g: GraphContext, vertex: int) -> None:
        if not self.visited[vertex]:
            self.visited[vertex] = True
            self.level[vertex] = g.iteration
            g.request_self(vertex)

    def run_on_vertex(self, g: GraphContext, vertex: int, page_vertex: PageVertex) -> None:
        g.activate(page_vertex.read_edges())

    @property
    def num_visited(self) -> int:
        """Vertices reached from the source."""
        return int(self.visited.sum())


class DirectionOptimizingBFSProgram(BFSProgram):
    """Beamer-style BFS that switches to bottom-up on large frontiers.

    In the bottom-up phase every *unvisited* vertex reads its own in-edge
    list and joins the frontier if any in-neighbor is visited — fewer edge
    traversals, but both edge directions are read, which is exactly the
    extra SSD traffic §5.2 warns about.
    """

    edge_type = EdgeType.BOTH
    state_bytes_per_vertex = 2
    checkpoint_fields = (
        "visited",
        "level",
        "bottom_up_fraction",
        "_frontier_size",
        "_adopted",
        "_bottom_up",
    )

    def __init__(self, num_vertices: int, bottom_up_fraction: float = 0.05) -> None:
        super().__init__(num_vertices)
        if not 0.0 < bottom_up_fraction <= 1.0:
            raise ValueError("bottom_up_fraction must be in (0, 1]")
        self.bottom_up_fraction = bottom_up_fraction
        self._frontier_size = 0
        self._adopted = 0
        self._bottom_up = False

    def run(self, g: GraphContext, vertex: int) -> None:
        g.notify_iteration_end()
        if self._bottom_up:
            if not self.visited[vertex]:
                g.request_self(vertex, EdgeType.IN)
            return
        if not self.visited[vertex]:
            self.visited[vertex] = True
            self.level[vertex] = g.iteration
            self._frontier_size += 1
            g.request_self(vertex, EdgeType.OUT)

    def run_on_vertex(self, g: GraphContext, vertex: int, page_vertex: PageVertex) -> None:
        if page_vertex.edge_type is EdgeType.OUT:
            g.activate(page_vertex.read_edges())
            return
        # Bottom-up probe: adopt the frontier if any parent joined it in
        # the previous iteration (unvisited vertices can have no older
        # visited parents — they would have been reached already).
        parents = page_vertex.read_edges()
        if parents.size and np.any(
            self.visited[parents] & (self.level[parents] == g.iteration - 1)
        ):
            self.visited[vertex] = True
            self.level[vertex] = g.iteration
            self._adopted += 1

    def run_on_iteration_end(self, g: GraphContext) -> None:
        if self._bottom_up:
            # Keep probing while the frontier still grows.
            if self._adopted:
                self._adopted = 0
                g.activate(np.nonzero(~self.visited)[0])
            return
        frontier = self._frontier_size
        self._frontier_size = 0
        if frontier > self.bottom_up_fraction * g.num_vertices:
            self._bottom_up = True
            # All unvisited vertices probe their parents next iteration.
            g.activate(np.nonzero(~self.visited)[0])


def bfs(
    engine: GraphEngine, source: int = 0, max_iterations: Optional[int] = None
) -> Tuple[np.ndarray, RunResult]:
    """Run BFS from ``source``; returns ``(levels, result)`` with ``-1``
    for unreached vertices."""
    program = BFSProgram(engine.image.num_vertices)
    result = engine.run(program, initial_active=np.asarray([source]), max_iterations=max_iterations)
    return program.level, result


def bfs_direction_optimizing(
    engine: GraphEngine, source: int = 0, bottom_up_fraction: float = 0.05
) -> Tuple[np.ndarray, RunResult]:
    """Direction-optimizing BFS from ``source``."""
    program = DirectionOptimizingBFSProgram(
        engine.image.num_vertices, bottom_up_fraction
    )
    result = engine.run(program, initial_active=np.asarray([source]))
    return program.level, result
