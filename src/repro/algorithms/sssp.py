"""Single-source shortest paths over weighted edges (extension).

A Bellman-Ford-style vertex program exercising FlashGraph's *detached
edge-attribute files* (§3.5.2): algorithms that do not need weights never
read them, and SSSP requests the attribute block alongside each edge list
(``with_attrs=True``), doubling that vertex's I/O only where needed.

Non-negative weights are assumed for comparison against Dijkstra.
"""

from typing import Optional, Tuple

import numpy as np

from repro.core.engine import GraphEngine, RunResult
from repro.core.vertex_program import GraphContext, VertexProgram
from repro.graph.page_vertex import PageVertex
from repro.graph.types import EdgeType


class SSSPProgram(VertexProgram):
    """Frontier-relaxation shortest paths (Bellman-Ford)."""

    edge_type = EdgeType.OUT
    combiner = "min"
    state_bytes_per_vertex = 8  # the tentative distance

    def __init__(self, num_vertices: int, source: int) -> None:
        self.dist = np.full(num_vertices, np.inf)
        self.dist[source] = 0.0
        # Distance each vertex last relaxed its out-edges at; ``inf``
        # means "never relaxed", so any finite distance is a positive
        # residual and the vertex is eligible for an async round.
        self._announced = np.full(num_vertices, np.inf)

    def run(self, g: GraphContext, vertex: int) -> None:
        # Relax out-edges; the engine pairs the edge list with its weight
        # block from the detached attribute file.
        self._announced[vertex] = self.dist[vertex]
        g.request_vertices(vertex, np.asarray([vertex]), EdgeType.OUT, with_attrs=True)

    def run_on_vertex(self, g: GraphContext, vertex: int, page_vertex: PageVertex) -> None:
        neighbors = page_vertex.read_edges()
        if neighbors.size == 0:
            return
        weights = page_vertex.read_edge_attrs()
        g.send_message(neighbors, self.dist[vertex] + weights.astype(np.float64))

    def run_on_message(self, g: GraphContext, vertex: int, value: float) -> None:
        if value < self.dist[vertex]:
            self.dist[vertex] = value
            g.activate(np.asarray([vertex]))

    # -- async priority hook (see docs/execution_modes.md) ---------------

    def residuals(self, vertices: np.ndarray) -> np.ndarray:
        """How much each tentative distance improved since the vertex
        last relaxed its out-edges (unreachable vertices hold no work)."""
        dist = self.dist[vertices]
        improvement = np.zeros(dist.size)
        finite = np.isfinite(dist)
        improvement[finite] = self._announced[vertices][finite] - dist[finite]
        return np.maximum(improvement, 0.0)


def sssp(
    engine: GraphEngine, source: int = 0, max_iterations: Optional[int] = None
) -> Tuple[np.ndarray, RunResult]:
    """Shortest-path distances from ``source`` (``inf`` when unreachable).

    The graph image must carry out-edge weights
    (``build_directed(..., weights=...)``).
    """
    program = SSSPProgram(engine.image.num_vertices, source)
    result = engine.run(
        program,
        initial_active=np.asarray([source]),
        max_iterations=max_iterations,
    )
    return program.dist, result
