"""Full and sampled betweenness centrality (extension of §4's BC).

The paper evaluates BC from a single source; exact betweenness sums the
single-source dependencies over *every* source, and the standard scalable
compromise samples sources uniformly and extrapolates (Brandes-Pich).
Both are thin orchestration over the engine's single-source program —
the per-source cost profile is exactly the paper's BC workload, repeated.
"""

from typing import Optional, Tuple

import numpy as np

from repro.algorithms.bc import betweenness_centrality, merge_results
from repro.core.engine import GraphEngine, RunResult


def betweenness_centrality_full(
    engine: GraphEngine,
) -> Tuple[np.ndarray, RunResult]:
    """Exact betweenness: dependencies summed over all sources.

    O(V) single-source runs — affordable on the scaled graphs, and the
    ground truth the sampled variant is tested against.
    """
    num_vertices = engine.image.num_vertices
    totals = np.zeros(num_vertices)
    merged: Optional[RunResult] = None
    for source in range(num_vertices):
        deltas, result = betweenness_centrality(engine, source)
        totals += deltas
        merged = result if merged is None else merge_results(merged, result)
    return totals, merged


def betweenness_centrality_sampled(
    engine: GraphEngine,
    num_sources: int,
    seed: int = 0,
) -> Tuple[np.ndarray, RunResult]:
    """Estimated betweenness from ``num_sources`` sampled sources.

    The estimate scales the sampled dependency sum by ``V / k`` — an
    unbiased estimator of the exact sum (Brandes & Pich 2007).
    """
    num_vertices = engine.image.num_vertices
    if not 1 <= num_sources <= num_vertices:
        raise ValueError("num_sources must be in [1, num_vertices]")
    rng = np.random.default_rng(seed)
    sources = rng.choice(num_vertices, size=num_sources, replace=False)
    totals = np.zeros(num_vertices)
    merged: Optional[RunResult] = None
    for source in sources:
        deltas, result = betweenness_centrality(engine, int(source))
        totals += deltas
        merged = result if merged is None else merge_results(merged, result)
    return totals * (num_vertices / num_sources), merged
