"""Weakly connected components via label propagation (§4).

Every vertex starts in its own component, broadcasts its component ID to
all neighbors (both edge directions — weak connectivity ignores edge
direction), and adopts the smallest ID it hears.  A vertex that receives
no smaller ID goes quiet; the algorithm ends when no labels change.
"""

from typing import Tuple

import numpy as np

from repro.core.engine import GraphEngine, RunResult
from repro.core.vertex_program import GraphContext, VertexProgram
from repro.graph.page_vertex import PageVertex
from repro.graph.types import EdgeType


class WCCProgram(VertexProgram):
    """Min-label propagation over both edge directions."""

    edge_type = EdgeType.BOTH
    combiner = "min"
    state_bytes_per_vertex = 4  # the component label
    checkpoint_fields = ("component", "_announced")

    def __init__(self, num_vertices: int) -> None:
        self.component = np.arange(num_vertices, dtype=np.int64)
        # Label each vertex last broadcast; the sentinel (no label is ever
        # ``num_vertices``) makes every vertex's initial residual positive
        # so the async mode starts from the full frontier.
        self._announced = np.full(num_vertices, num_vertices, dtype=np.int64)

    def run(self, g: GraphContext, vertex: int) -> None:
        # Broadcast the current label along both directions.  The engine
        # fetches the in- and out-edge lists as two requests (they live in
        # separate files) and merges adjacent ones (§3.5.2).
        self._announced[vertex] = self.component[vertex]
        g.request_self(vertex, EdgeType.BOTH)

    def run_on_vertex(self, g: GraphContext, vertex: int, page_vertex: PageVertex) -> None:
        neighbors = page_vertex.read_edges()
        if neighbors.size:
            g.send_message(neighbors, float(self.component[vertex]))

    def run_on_message(self, g: GraphContext, vertex: int, value: float) -> None:
        label = int(value)
        if label < self.component[vertex]:
            self.component[vertex] = label
            g.activate(np.asarray([vertex]))

    # -- batched fast path (observationally identical to the scalar
    # methods above) ----------------------------------------------------

    def run_batch(self, g: GraphContext, vertices: np.ndarray) -> None:
        self._announced[vertices] = self.component[vertices]
        g.request_self_batch(vertices, EdgeType.BOTH)

    def run_on_vertices(self, g: GraphContext, batch) -> None:
        g.send_message_batch(
            batch.read_edges_concat(),
            batch.repeat(self.component[batch.vertices].astype(np.float64)),
            batch.degrees,
        )

    def run_on_messages(self, g: GraphContext, dests: np.ndarray, values: np.ndarray) -> np.ndarray:
        # Labels survive the float64 round trip exactly (vertex IDs are
        # far below 2**53), so the truncation matches ``int(value)``.
        labels = values.astype(np.int64)
        better = labels < self.component[dests]
        self.component[dests[better]] = labels[better]
        return better

    # -- async priority hook (see docs/execution_modes.md) ---------------

    def residuals(self, vertices: np.ndarray) -> np.ndarray:
        """How far each label dropped since the vertex last broadcast."""
        improvement = self._announced[vertices] - self.component[vertices]
        return np.maximum(improvement, 0).astype(np.float64)

    def num_components(self) -> int:
        """Distinct component labels after convergence."""
        return int(np.unique(self.component).size)


def wcc(engine: GraphEngine) -> Tuple[np.ndarray, RunResult]:
    """Label every vertex with its weakly-connected component.

    Labels are the smallest vertex ID in each component.
    """
    program = WCCProgram(engine.image.num_vertices)
    result = engine.run(program)
    return program.component, result
