"""Local clustering coefficients (extension).

The clustering coefficient of a vertex is ``2 * triangles(v) /
(deg(v) * (deg(v) - 1))`` on the undirected projection — a direct product
of the triangle-counting program, so this module composes rather than
re-traverses: one TC run yields every vertex's coefficient plus the
graph's average (the Watts-Strogatz small-world statistic the paper's TC
reference [28] introduced).
"""

from typing import Tuple

import numpy as np

from repro.algorithms.triangle_count import TriangleCountProgram
from repro.core.engine import GraphEngine, RunResult
from repro.graph.builder import GraphImage


def undirected_degrees(image: GraphImage) -> np.ndarray:
    """Distinct-neighbor counts on the undirected projection, self-loops
    excluded."""
    num_vertices = image.num_vertices
    degrees = np.zeros(num_vertices, dtype=np.int64)
    for vertex in range(num_vertices):
        merged = np.union1d(
            image.out_csr.neighbors(vertex), image.in_csr.neighbors(vertex)
        )
        degrees[vertex] = int((merged != vertex).sum())
    return degrees


def clustering_coefficients(
    engine: GraphEngine,
) -> Tuple[np.ndarray, float, RunResult]:
    """Per-vertex clustering coefficients and their mean.

    Returns ``(coefficients, average, result)``.  Vertices with fewer
    than two neighbors have coefficient 0 (the networkx convention).
    """
    image = engine.image
    program = TriangleCountProgram(image.num_vertices, image.directed)
    result = engine.run(program)
    degrees = undirected_degrees(image)
    pairs = degrees * (degrees - 1)
    coefficients = np.zeros(image.num_vertices)
    valid = pairs > 0
    coefficients[valid] = 2.0 * program.triangles[valid] / pairs[valid]
    average = float(coefficients.mean()) if image.num_vertices else 0.0
    return coefficients, average, result
