"""Scan statistics (§4).

The scan statistic of a graph is the maximum *locality statistic* over
vertices: the number of edges in the neighborhood of a vertex (its degree
plus the edges among its neighbors, on the undirected projection).

The paper's key optimisation [27]: a custom vertex scheduler runs the
largest-degree vertices first, and every vertex whose upper bound
``deg + C(deg, 2)`` cannot beat the best statistic seen so far skips its
computation entirely — on power-law graphs almost every vertex is pruned.
"""

from typing import Dict, List, Tuple

import numpy as np

from repro.core.config import ScheduleOrder
from repro.core.engine import GraphEngine, RunResult
from repro.core.vertex_program import GraphContext, VertexProgram
from repro.graph.page_vertex import PageVertex
from repro.graph.types import EdgeType


class ScanStatisticsProgram(VertexProgram):
    """Maximal locality statistic with degree-descending pruning."""

    combiner = None
    state_bytes_per_vertex = 8

    def __init__(self, num_vertices: int, directed: bool) -> None:
        self.directed = directed
        self.edge_type = EdgeType.BOTH if directed else EdgeType.OUT
        #: Locality statistic per vertex; -1 where pruning skipped it.
        self.scan = np.full(num_vertices, -1, dtype=np.int64)
        self.max_scan = 0
        self.argmax = -1
        self.pruned = 0
        self._own_parts: Dict[int, List[np.ndarray]] = {}
        self._neighborhood: Dict[int, np.ndarray] = {}
        self._nbr_parts: Dict[Tuple[int, int], List[np.ndarray]] = {}
        self._among: Dict[int, int] = {}
        self._outstanding: Dict[int, int] = {}

    def _lists_per_vertex(self) -> int:
        return 2 if self.directed else 1

    def _undirected_degree(self, g: GraphContext, vertex: int) -> int:
        degree = g.degree(vertex, EdgeType.OUT)
        if self.directed:
            degree += g.degree(vertex, EdgeType.IN)
        return degree

    def custom_order(self, active: np.ndarray, iteration: int) -> np.ndarray:
        """Largest-degree first — the paper's custom scheduler."""
        degrees = self._order_degrees[active]
        return active[np.argsort(-degrees, kind="stable")]

    def attach_degrees(self, degrees: np.ndarray) -> None:
        """Install the degree array the custom scheduler sorts by."""
        self._order_degrees = degrees

    def run(self, g: GraphContext, vertex: int) -> None:
        degree = self._undirected_degree(g, vertex)
        bound = degree + degree * (degree - 1) // 2
        if bound <= self.max_scan:
            self.pruned += 1
            return
        g.request_self(vertex, self.edge_type)

    def run_on_vertex(self, g: GraphContext, vertex: int, page_vertex: PageVertex) -> None:
        owner = page_vertex.vertex_id
        if owner == vertex:
            self._on_own_list(g, vertex, page_vertex)
        else:
            self._on_neighbor_list(g, vertex, owner, page_vertex)

    def _on_own_list(self, g: GraphContext, vertex: int, page_vertex: PageVertex) -> None:
        parts = self._own_parts.setdefault(vertex, [])
        parts.append(page_vertex.read_edges())
        if len(parts) < self._lists_per_vertex():
            return
        del self._own_parts[vertex]
        merged = np.unique(np.concatenate(parts))
        neighborhood = merged[merged != vertex].astype(np.int64)
        if neighborhood.size == 0:
            self._finish(vertex, 0, 0)
            return
        self._neighborhood[vertex] = neighborhood
        self._among[vertex] = 0
        self._outstanding[vertex] = neighborhood.size * self._lists_per_vertex()
        g.request_vertices(vertex, neighborhood, self.edge_type)

    def _on_neighbor_list(
        self, g: GraphContext, vertex: int, owner: int, page_vertex: PageVertex
    ) -> None:
        key = (vertex, owner)
        parts = self._nbr_parts.setdefault(key, [])
        parts.append(page_vertex.read_edges())
        if len(parts) == self._lists_per_vertex():
            del self._nbr_parts[key]
            mine = self._neighborhood[vertex]
            # Union the owner's directions first: a reciprocal pair of
            # directed edges is one edge of the undirected projection.
            others = (
                np.unique(np.concatenate(parts))
                if len(parts) > 1
                else np.unique(parts[0])
            ).astype(np.int64)
            g.charge_edges(mine.size + others.size)
            common = np.intersect1d(mine, others, assume_unique=True)
            # Each neighbor-neighbor edge is visible from both endpoints;
            # count it at the lower-ID one only.
            self._among[vertex] += int((common > owner).sum())
        self._outstanding[vertex] -= 1
        if self._outstanding[vertex] == 0:
            neighborhood = self._neighborhood.pop(vertex)
            among = self._among.pop(vertex)
            del self._outstanding[vertex]
            self._finish(vertex, neighborhood.size, among)

    def _finish(self, vertex: int, degree: int, among: int) -> None:
        statistic = degree + among
        self.scan[vertex] = statistic
        if statistic > self.max_scan:
            self.max_scan = statistic
            self.argmax = vertex


def scan_statistics(engine: GraphEngine) -> Tuple[int, int, RunResult]:
    """The maximal locality statistic and its vertex.

    Returns ``(max_scan, argmax_vertex, result)``.  Installs the paper's
    degree-descending custom scheduler; the engine's config should use
    ``ScheduleOrder.CUSTOM`` to benefit (the helper forces it).
    """
    if engine.config.schedule_order is not ScheduleOrder.CUSTOM:
        engine.config = engine.config.with_overrides(
            schedule_order=ScheduleOrder.CUSTOM
        )
    image = engine.image
    program = ScanStatisticsProgram(image.num_vertices, image.directed)
    degrees = image.out_csr.degrees().astype(np.int64)
    if image.directed:
        degrees = degrees + image.in_csr.degrees()
    program.attach_degrees(degrees)
    result = engine.run(program)
    return program.max_scan, program.argmax, result
