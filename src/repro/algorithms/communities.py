"""Community detection by label propagation (extension).

§3.4 argues FlashGraph's interface is flexible enough for algorithms like
Louvain clustering whose communication is not limited to direct
neighbors.  This module implements the label-propagation community
detection of Raghavan et al. — the standard scalable baseline Louvain
implementations start from — as a vertex program, plus a modularity
scorer to evaluate the partition it finds.

Semi-synchronous variant: each iteration every active vertex adopts the
label carried by the *plurality* of its neighbors (ties break toward the
smaller label, which also guarantees convergence instead of 2-cycles).
"""

from typing import Dict, Tuple

import numpy as np

from repro.core.engine import GraphEngine, RunResult
from repro.core.vertex_program import GraphContext, VertexProgram
from repro.graph.builder import GraphImage
from repro.graph.page_vertex import PageVertex
from repro.graph.types import EdgeType


class LabelPropagationProgram(VertexProgram):
    """Plurality-label propagation over the undirected projection.

    Messages carry neighbor labels; because plurality needs the full
    multiset, this program keeps per-vertex tallies instead of a scalar
    combiner — exercising the ``combiner=None`` path of the engine.
    """

    combiner = None
    state_bytes_per_vertex = 8

    def __init__(self, num_vertices: int, directed: bool, max_rounds: int = 20) -> None:
        if max_rounds < 1:
            raise ValueError("need at least one round")
        self.directed = directed
        self.edge_type = EdgeType.BOTH if directed else EdgeType.OUT
        self.labels = np.arange(num_vertices, dtype=np.int64)
        self.max_rounds = max_rounds
        self._tallies: Dict[int, Dict[int, int]] = {}

    def run(self, g: GraphContext, vertex: int) -> None:
        if g.iteration >= self.max_rounds:
            return
        g.request_self(vertex, self.edge_type)
        g.notify_iteration_end()

    def run_on_vertex(self, g: GraphContext, vertex: int, page_vertex: PageVertex) -> None:
        neighbors = page_vertex.read_edges()
        if neighbors.size:
            g.send_message(neighbors, float(self.labels[vertex]))

    def run_on_message(self, g: GraphContext, vertex: int, value: float) -> None:
        tally = self._tallies.setdefault(vertex, {})
        label = int(value)
        tally[label] = tally.get(label, 0) + 1

    def run_on_iteration_end(self, g: GraphContext) -> None:
        changed = []
        for vertex, tally in self._tallies.items():
            # Plurality label; ties break to the smallest label so the
            # process is deterministic and cannot oscillate forever.
            best = min(
                tally, key=lambda label: (-tally[label], label)
            )
            if best != self.labels[vertex]:
                self.labels[vertex] = best
                changed.append(vertex)
        self._tallies.clear()
        if changed and g.iteration + 1 < self.max_rounds:
            # A changed vertex and its neighborhood must reconsider.
            g.activate(np.asarray(changed, dtype=np.int64))

    def num_communities(self) -> int:
        return int(np.unique(self.labels).size)


def label_propagation(
    engine: GraphEngine, max_rounds: int = 20
) -> Tuple[np.ndarray, RunResult]:
    """Community labels for every vertex (plurality label propagation)."""
    image = engine.image
    program = LabelPropagationProgram(image.num_vertices, image.directed, max_rounds)
    result = engine.run(program, max_iterations=max_rounds)
    return program.labels, result


def modularity(image: GraphImage, labels: np.ndarray) -> float:
    """Newman modularity of a labelling, on the undirected projection.

    Q = (1/2m) * sum_ij [A_ij - k_i k_j / 2m] * delta(c_i, c_j)
    """
    labels = np.asarray(labels)
    if labels.size != image.num_vertices:
        raise ValueError("one label per vertex is required")
    # Undirected projection: union of out- and in-neighbors, each
    # undirected edge counted once.
    edges = set()
    for direction in (EdgeType.OUT, EdgeType.IN):
        csr = image.csr(direction)
        for v in range(image.num_vertices):
            for u in csr.neighbors(v):
                u = int(u)
                if u != v:
                    edges.add((min(v, u), max(v, u)))
        if not image.directed:
            break
    m = len(edges)
    if m == 0:
        return 0.0
    degrees = np.zeros(image.num_vertices, dtype=np.int64)
    internal = 0
    for u, v in edges:
        degrees[u] += 1
        degrees[v] += 1
        if labels[u] == labels[v]:
            internal += 1
    # Sum of (community degree)^2 via bincount on label ids.
    unique, inverse = np.unique(labels, return_inverse=True)
    community_degree = np.zeros(unique.size, dtype=np.float64)
    np.add.at(community_degree, inverse, degrees)
    expected = float((community_degree**2).sum()) / (4.0 * m * m)
    return internal / m - expected
