"""Delta-based PageRank (§4).

The paper's PageRank sends the *delta* of a vertex's most recent update to
its neighbors, who fold it into their own rank (the Maiter accumulative
formulation [30]).  Vertices whose pending delta falls below a threshold
stop propagating, so the active set shrinks as the algorithm converges —
the property that makes PageRank's I/O mostly sequential early and sparse
late.  The iteration cap is 30, matching Pregel and the paper.

The fixpoint solved is the unnormalised accumulative PageRank::

    rank[v] = (1 - d) + d * sum_{u -> v} rank_contribution(u) / out_deg(u)

Dangling vertices keep their mass (no redistribution), exactly like the
delta formulation the paper cites.
"""

from typing import Optional, Tuple

import numpy as np

from repro.core.engine import GraphEngine, RunResult
from repro.core.vertex_program import GraphContext, VertexProgram
from repro.graph.page_vertex import PageVertex
from repro.graph.types import EdgeType

#: The paper caps PageRank at 30 iterations, matching Pregel.
DEFAULT_MAX_ITERATIONS = 30

#: Default propagation-stop threshold (see ``tolerance`` below); named
#: so callers coarsening it (serving-layer brownout) share one source.
DEFAULT_TOLERANCE = 1e-6


class PageRankProgram(VertexProgram):
    """Accumulative (delta) PageRank."""

    edge_type = EdgeType.OUT
    combiner = "sum"
    state_bytes_per_vertex = 8  # rank (f4) + pending delta (f4)
    checkpoint_fields = ("damping", "tolerance", "rank", "pending", "_sending")

    def __init__(
        self,
        num_vertices: int,
        damping: float = 0.85,
        tolerance: float = DEFAULT_TOLERANCE,
    ) -> None:
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must lie in (0, 1)")
        if tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        self.damping = damping
        self.tolerance = tolerance
        self.rank = np.zeros(num_vertices)
        self.pending = np.full(num_vertices, 1.0 - damping)
        self._sending = np.zeros(num_vertices)
        # Async scheduling floor: sync drops a push when
        # ``damping * delta <= tolerance``, so a pending delta at or
        # below ``tolerance / damping`` is not worth scheduling — the
        # exact same mass sync would leave unpropagated.
        self.async_floor = tolerance / damping

    def run(self, g: GraphContext, vertex: int) -> None:
        delta = self.pending[vertex]
        if delta == 0.0:
            return
        self.pending[vertex] = 0.0
        self.rank[vertex] += delta
        out_degree = g.degree(vertex, EdgeType.OUT)
        push = self.damping * delta
        if out_degree == 0 or push <= self.tolerance:
            return
        self._sending[vertex] = push / out_degree
        g.request_self(vertex, EdgeType.OUT)

    def run_on_vertex(self, g: GraphContext, vertex: int, page_vertex: PageVertex) -> None:
        g.send_message(page_vertex.read_edges(), self._sending[vertex])

    def run_on_message(self, g: GraphContext, vertex: int, value: float) -> None:
        self.pending[vertex] += value
        g.activate(np.asarray([vertex]))

    # -- batched fast path (observationally identical to the scalar
    # methods above; the engine replays all per-vertex charges) ---------

    def run_batch(self, g: GraphContext, vertices: np.ndarray) -> None:
        delta = self.pending[vertices]
        live = delta != 0.0
        active = vertices[live]
        delta = delta[live]
        self.pending[active] = 0.0
        self.rank[active] += delta
        out_degree = g.degrees_of(active, EdgeType.OUT)
        push = self.damping * delta
        sending = (out_degree != 0) & (push > self.tolerance)
        pushers = active[sending]
        self._sending[pushers] = push[sending] / out_degree[sending]
        g.request_self_batch(pushers, EdgeType.OUT)

    def run_on_vertices(self, g: GraphContext, batch) -> None:
        g.send_message_batch(
            batch.read_edges_concat(),
            batch.repeat(self._sending[batch.vertices]),
            batch.degrees,
        )

    def run_on_messages(self, g: GraphContext, dests: np.ndarray, values: np.ndarray) -> np.ndarray:
        self.pending[dests] += values
        return np.ones(dests.size, dtype=bool)

    # -- async priority hook (see docs/execution_modes.md) ---------------

    def residuals(self, vertices: np.ndarray) -> np.ndarray:
        """Unpropagated rank mass: the pending delta itself."""
        return np.abs(self.pending[vertices])


def pagerank(
    engine: GraphEngine,
    damping: float = 0.85,
    max_iterations: Optional[int] = DEFAULT_MAX_ITERATIONS,
    tolerance: float = 1e-6,
) -> Tuple[np.ndarray, RunResult]:
    """Run delta PageRank on every vertex; returns ``(ranks, result)``.

    Ranks are the unnormalised accumulative values; divide by their sum
    for a probability distribution.
    """
    program = PageRankProgram(engine.image.num_vertices, damping, tolerance)
    result = engine.run(program, max_iterations=max_iterations)
    # Fold not-yet-applied deltas in so the returned vector is the best
    # estimate at the iteration cap.
    ranks = program.rank + program.pending
    return ranks, result
