"""Graph algorithms expressed as FlashGraph vertex programs (§4).

The six applications the paper evaluates, spanning its three I/O classes:

1. traversal, touching a vertex subset per iteration — :mod:`bfs`,
   :mod:`bc` (betweenness centrality);
2. all-active, mostly-sequential I/O — :mod:`pagerank`, :mod:`wcc`;
3. vertices reading many *other* vertices' edge lists — :mod:`triangle_count`,
   :mod:`scan_statistics`.

Extensions beyond the paper's evaluation set: :mod:`kcore`, :mod:`sssp`,
:mod:`diameter` (used to report Table 1's diameter column), and
direction-optimizing BFS (:mod:`bfs`, discussed in §5.2).
"""

from repro.algorithms.bc import BetweennessCentralityProgram, betweenness_centrality
from repro.algorithms.bc_full import (
    betweenness_centrality_full,
    betweenness_centrality_sampled,
)
from repro.algorithms.clustering import clustering_coefficients
from repro.algorithms.communities import (
    LabelPropagationProgram,
    label_propagation,
    modularity,
)
from repro.algorithms.core_decomposition import core_decomposition
from repro.algorithms.bfs import (
    BFSProgram,
    DirectionOptimizingBFSProgram,
    bfs,
    bfs_direction_optimizing,
)
from repro.algorithms.diameter import estimate_diameter
from repro.algorithms.kcore import KCoreProgram, kcore
from repro.algorithms.louvain import LouvainResult, louvain
from repro.algorithms.pagerank import PageRankProgram, pagerank
from repro.algorithms.scan_statistics import ScanStatisticsProgram, scan_statistics
from repro.algorithms.scc import scc
from repro.algorithms.sssp import SSSPProgram, sssp
from repro.algorithms.triangle_count import TriangleCountProgram, triangle_count
from repro.algorithms.wcc import WCCProgram, wcc
from repro.algorithms.weighted_pagerank import (
    WeightedPageRankProgram,
    weighted_pagerank,
)

__all__ = [
    "BetweennessCentralityProgram",
    "betweenness_centrality",
    "betweenness_centrality_full",
    "betweenness_centrality_sampled",
    "clustering_coefficients",
    "LabelPropagationProgram",
    "label_propagation",
    "modularity",
    "core_decomposition",
    "BFSProgram",
    "DirectionOptimizingBFSProgram",
    "bfs",
    "bfs_direction_optimizing",
    "estimate_diameter",
    "KCoreProgram",
    "kcore",
    "LouvainResult",
    "louvain",
    "PageRankProgram",
    "pagerank",
    "ScanStatisticsProgram",
    "scan_statistics",
    "scc",
    "SSSPProgram",
    "sssp",
    "TriangleCountProgram",
    "triangle_count",
    "WCCProgram",
    "wcc",
    "WeightedPageRankProgram",
    "weighted_pagerank",
]
