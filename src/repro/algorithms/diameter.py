"""Effective diameter estimation (used for Table 1's diameter column).

The paper's Table 1 reports dataset diameters, noting the estimation
ignores edge direction.  We use the standard double-sweep lower bound:
repeated BFS sweeps on the undirected projection, each starting from the
farthest vertex the previous sweep found, plus a few random restarts.
This is a utility over the in-memory CSR (graph construction tooling, not
a vertex program — diameter is measured once per dataset, offline).
"""

from typing import Tuple

import numpy as np

from repro.graph.builder import CSR, GraphImage


def _undirected_csr(image: GraphImage) -> CSR:
    if not image.directed:
        return image.out_csr
    num_vertices = image.num_vertices
    out_csr, in_csr = image.out_csr, image.in_csr
    degrees = np.diff(out_csr.indptr) + np.diff(in_csr.indptr)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    indices = np.empty(int(indptr[-1]), dtype=np.uint32)
    cursor = indptr[:-1].copy()
    for vertex in range(num_vertices):
        for csr in (out_csr, in_csr):
            neighbors = csr.neighbors(vertex)
            end = cursor[vertex] + neighbors.size
            indices[cursor[vertex] : end] = neighbors
            cursor[vertex] = end
    return CSR(indptr, indices)


def _bfs_eccentricity(csr: CSR, source: int) -> Tuple[int, int]:
    """``(eccentricity, farthest_vertex)`` from ``source`` via frontier BFS."""
    num_vertices = csr.indptr.size - 1
    visited = np.zeros(num_vertices, dtype=bool)
    visited[source] = True
    frontier = np.asarray([source], dtype=np.int64)
    level = 0
    last = source
    while True:
        chunks = [csr.neighbors(int(v)) for v in frontier]
        if chunks:
            nxt = np.unique(np.concatenate(chunks).astype(np.int64))
            nxt = nxt[~visited[nxt]]
        else:
            nxt = np.zeros(0, dtype=np.int64)
        if nxt.size == 0:
            return level, last
        visited[nxt] = True
        frontier = nxt
        last = int(nxt[0])
        level += 1


def estimate_diameter(image: GraphImage, num_sweeps: int = 8, seed: int = 0) -> int:
    """A double-sweep lower bound on the diameter, ignoring direction."""
    if num_sweeps <= 0:
        raise ValueError("need at least one sweep")
    csr = _undirected_csr(image)
    rng = np.random.default_rng(seed)
    best = 0
    start = int(rng.integers(0, image.num_vertices))
    for sweep in range(num_sweeps):
        ecc, farthest = _bfs_eccentricity(csr, start)
        if ecc > best:
            best = ecc
        # Alternate: continue from the farthest vertex, or restart randomly
        # to escape small components.
        if sweep % 2 == 0 and farthest != start:
            start = farthest
        else:
            start = int(rng.integers(0, image.num_vertices))
    return best
