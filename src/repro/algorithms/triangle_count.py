"""Triangle counting (§4).

The paper's third I/O class: a vertex reads the edge lists of *many other
vertices*.  Each vertex ``v`` fetches its own edge lists (both directions
on a directed graph — triangles live in the undirected projection), then
requests the edge lists of every neighbor with a larger ID and intersects.
A triangle ``v < u < w`` is counted once, at ``v``, which then notifies
``u`` and ``w`` by message so every member's per-vertex count is right.

This access pattern is why TC is the paper's most I/O-intensive
application, and the one vertical partitioning (§3.8) helps most: a hub's
request for thousands of neighbor lists splits into parts other threads
can execute.
"""

from typing import Dict, List, Tuple

import numpy as np

from repro.core.engine import GraphEngine, RunResult
from repro.core.vertex_program import GraphContext, VertexProgram
from repro.graph.page_vertex import PageVertex
from repro.graph.types import EdgeType


class TriangleCountProgram(VertexProgram):
    """Per-vertex triangle counts over the undirected projection."""

    combiner = "sum"
    state_bytes_per_vertex = 8

    def __init__(self, num_vertices: int, directed: bool) -> None:
        self.directed = directed
        self.edge_type = EdgeType.BOTH if directed else EdgeType.OUT
        self.triangles = np.zeros(num_vertices, dtype=np.int64)
        # Transient per-vertex buffers while requests are in flight.
        self._own_parts: Dict[int, List[np.ndarray]] = {}
        self._neighborhood: Dict[int, np.ndarray] = {}
        self._nbr_parts: Dict[Tuple[int, int], List[np.ndarray]] = {}
        self._outstanding: Dict[int, int] = {}

    def _lists_per_vertex(self) -> int:
        return 2 if self.directed else 1

    def run(self, g: GraphContext, vertex: int) -> None:
        g.request_self(vertex, self.edge_type)

    def run_on_vertex(self, g: GraphContext, vertex: int, page_vertex: PageVertex) -> None:
        owner = page_vertex.vertex_id
        if owner == vertex:
            self._on_own_list(g, vertex, page_vertex)
        else:
            self._on_neighbor_list(g, vertex, owner, page_vertex)

    def _on_own_list(self, g: GraphContext, vertex: int, page_vertex: PageVertex) -> None:
        parts = self._own_parts.setdefault(vertex, [])
        parts.append(page_vertex.read_edges())
        if len(parts) < self._lists_per_vertex():
            return
        del self._own_parts[vertex]
        neighborhood = _union_without(parts, vertex)
        higher = neighborhood[neighborhood > vertex]
        if higher.size == 0:
            return
        self._neighborhood[vertex] = neighborhood
        self._outstanding[vertex] = higher.size * self._lists_per_vertex()
        g.request_vertices(vertex, higher, self.edge_type)

    def _on_neighbor_list(
        self, g: GraphContext, vertex: int, owner: int, page_vertex: PageVertex
    ) -> None:
        key = (vertex, owner)
        parts = self._nbr_parts.setdefault(key, [])
        parts.append(page_vertex.read_edges())
        if len(parts) == self._lists_per_vertex():
            del self._nbr_parts[key]
            self._count_with(g, vertex, owner, _union_without(parts, owner))
        self._outstanding[vertex] -= 1
        if self._outstanding[vertex] == 0:
            del self._outstanding[vertex]
            del self._neighborhood[vertex]

    def _count_with(
        self, g: GraphContext, vertex: int, owner: int, neighbor_set: np.ndarray
    ) -> None:
        mine = self._neighborhood[vertex]
        g.charge_edges(mine.size + neighbor_set.size)
        common = np.intersect1d(mine, neighbor_set, assume_unique=True)
        closing = common[common > owner]
        if closing.size == 0:
            return
        # One triangle (vertex, owner, w) per closing w: count locally,
        # notify the other two corners by message.
        count = int(closing.size)
        self.triangles[vertex] += count
        g.send_message(np.asarray([owner]), float(count))
        g.send_message(closing, 1.0)

    def run_on_message(self, g: GraphContext, vertex: int, value: float) -> None:
        self.triangles[vertex] += int(round(value))

    @property
    def total_triangles(self) -> int:
        """Triangles in the graph (each contributes 3 corner counts)."""
        return int(self.triangles.sum()) // 3


def _union_without(parts: List[np.ndarray], vertex: int) -> np.ndarray:
    merged = np.unique(np.concatenate(parts)) if len(parts) > 1 else np.unique(parts[0])
    return merged[merged != vertex].astype(np.int64)


def triangle_count(engine: GraphEngine) -> Tuple[np.ndarray, RunResult]:
    """Per-vertex triangle counts; ``result`` reports the run."""
    program = TriangleCountProgram(
        engine.image.num_vertices, engine.image.directed
    )
    result = engine.run(program)
    return program.triangles, result
