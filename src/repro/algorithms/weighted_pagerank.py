"""Weighted delta PageRank (extension).

The delta formulation of §4 generalises directly to weighted edges: a
vertex pushes its damped delta *proportionally to edge weight* instead of
uniformly.  Each push reads the detached attribute block alongside the
edge list (``with_attrs=True``), making this the all-active counterpart
to SSSP's use of the §3.5.2 attribute files.
"""

from typing import Optional, Tuple

import numpy as np

from repro.core.engine import GraphEngine, RunResult
from repro.core.vertex_program import GraphContext, VertexProgram
from repro.graph.page_vertex import PageVertex
from repro.graph.types import EdgeType


class WeightedPageRankProgram(VertexProgram):
    """Accumulative PageRank with weight-proportional pushes."""

    edge_type = EdgeType.OUT
    combiner = "sum"
    state_bytes_per_vertex = 8

    def __init__(
        self,
        num_vertices: int,
        damping: float = 0.85,
        tolerance: float = 1e-6,
    ) -> None:
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must lie in (0, 1)")
        if tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        self.damping = damping
        self.tolerance = tolerance
        self.rank = np.zeros(num_vertices)
        self.pending = np.full(num_vertices, 1.0 - damping)
        self._sending = np.zeros(num_vertices)

    def run(self, g: GraphContext, vertex: int) -> None:
        delta = self.pending[vertex]
        if delta == 0.0:
            return
        self.pending[vertex] = 0.0
        self.rank[vertex] += delta
        push = self.damping * delta
        if g.degree(vertex, EdgeType.OUT) == 0 or push <= self.tolerance:
            return
        self._sending[vertex] = push
        g.request_vertices(
            vertex, np.asarray([vertex]), EdgeType.OUT, with_attrs=True
        )

    def run_on_vertex(self, g: GraphContext, vertex: int, page_vertex: PageVertex) -> None:
        neighbors = page_vertex.read_edges()
        if neighbors.size == 0:
            return
        weights = page_vertex.read_edge_attrs().astype(np.float64)
        total = weights.sum()
        if total <= 0.0:
            return
        g.send_message(neighbors, self._sending[vertex] * weights / total)

    def run_on_message(self, g: GraphContext, vertex: int, value: float) -> None:
        self.pending[vertex] += value
        g.activate(np.asarray([vertex]))


def weighted_pagerank(
    engine: GraphEngine,
    damping: float = 0.85,
    max_iterations: Optional[int] = 30,
    tolerance: float = 1e-6,
) -> Tuple[np.ndarray, RunResult]:
    """Weighted delta PageRank over a graph built with out-edge weights."""
    program = WeightedPageRankProgram(
        engine.image.num_vertices, damping, tolerance
    )
    result = engine.run(program, max_iterations=max_iterations)
    return program.rank + program.pending, result
