"""Louvain community detection (§3.4's flexibility example).

The paper singles out Louvain clustering [5] as an algorithm "in which
changes to the topology of the graph occur during computation" — hard to
express in frameworks where vertices only talk to direct neighbors, and a
showcase for FlashGraph's unconstrained interface.  This module
implements both Louvain phases on the engine:

1. **Local moving** (:class:`LouvainMoveProgram`): each vertex requests
   its own (weighted) edge list, evaluates the modularity gain of joining
   each neighbor community, and moves greedily.  The engine's sequential
   vertex execution within the DES gives the classic sequential-Louvain
   semantics, deterministically.
2. **Aggregation**: communities collapse into super-vertices of a new,
   *weighted* graph image — the topology change — and phase 1 reruns on
   the coarse graph, until modularity stops improving.

Operates on undirected images; build weighted coarse levels with
``build_undirected(..., weights=...)``.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.algorithms.bc import merge_results
from repro.algorithms.communities import modularity
from repro.core.engine import GraphEngine, RunResult
from repro.core.vertex_program import GraphContext, VertexProgram
from repro.graph.builder import GraphImage, build_undirected
from repro.graph.page_vertex import PageVertex
from repro.graph.types import EdgeType


class LouvainMoveProgram(VertexProgram):
    """One local-moving phase over a (possibly weighted) undirected image."""

    edge_type = EdgeType.OUT
    combiner = None
    state_bytes_per_vertex = 16  # community id + weighted degree

    def __init__(self, image: GraphImage, max_sweeps: int = 10) -> None:
        if image.directed:
            raise ValueError("Louvain expects an undirected image")
        if max_sweeps < 1:
            raise ValueError("need at least one sweep")
        self.image = image
        self.max_sweeps = max_sweeps
        self.weighted = EdgeType.OUT in image.attr_bytes
        n = image.num_vertices
        self.community = np.arange(n, dtype=np.int64)
        self.degree = self._weighted_degrees()
        self.sigma_tot = self.degree.copy().astype(np.float64)
        self.total_weight = float(self.degree.sum()) / 2.0  # m
        self.moves = 0

    def _weighted_degrees(self) -> np.ndarray:
        n = self.image.num_vertices
        if not self.weighted:
            return self.image.out_csr.degrees().astype(np.float64)
        weights = np.frombuffer(self.image.attr_bytes[EdgeType.OUT], dtype="<f4")
        indptr = self.image.out_csr.indptr
        degrees = np.zeros(n)
        for v in range(n):
            degrees[v] = float(weights[indptr[v] : indptr[v + 1]].sum())
        return degrees

    def run(self, g: GraphContext, vertex: int) -> None:
        if g.iteration >= self.max_sweeps:
            return
        g.request_vertices(
            vertex, np.asarray([vertex]), EdgeType.OUT, with_attrs=self.weighted
        )

    def run_on_vertex(self, g: GraphContext, vertex: int, page_vertex: PageVertex) -> None:
        neighbors = page_vertex.read_edges().astype(np.int64)
        if neighbors.size == 0:
            return
        if self.weighted:
            weights = page_vertex.read_edge_attrs().astype(np.float64)
        else:
            weights = np.ones(neighbors.size)
        not_self = neighbors != vertex
        neighbors = neighbors[not_self]
        weights = weights[not_self]
        if neighbors.size == 0:
            return
        g.charge_edges(int(neighbors.size))

        m = self.total_weight
        old = int(self.community[vertex])
        k_i = self.degree[vertex]
        # Links from this vertex into each adjacent community.
        communities = self.community[neighbors]
        unique, inverse = np.unique(communities, return_inverse=True)
        k_in = np.zeros(unique.size)
        np.add.at(k_in, inverse, weights)

        # Remove the vertex from its community before evaluating gains.
        self.sigma_tot[old] -= k_i
        old_pos = np.nonzero(unique == old)[0]
        baseline = (
            float(k_in[old_pos[0]]) if old_pos.size else 0.0
        ) - k_i * self.sigma_tot[old] / (2.0 * m)
        gains = k_in - k_i * self.sigma_tot[unique] / (2.0 * m)
        best_pos = int(np.argmax(gains))
        if gains[best_pos] > baseline + 1e-12:
            target = int(unique[best_pos])
        else:
            target = old
        self.sigma_tot[target] += k_i
        if target != old:
            self.community[vertex] = target
            self.moves += 1
            # Neighbors must re-evaluate their placement.
            g.activate(neighbors)
            g.activate(np.asarray([vertex]))


@dataclass
class LouvainResult:
    """Output of the full multi-level Louvain run."""

    communities: np.ndarray
    modularity: float
    levels: int
    run: Optional[RunResult] = None
    level_sizes: List[int] = field(default_factory=list)


def _aggregate(
    image: GraphImage, community: np.ndarray
) -> Tuple[GraphImage, np.ndarray]:
    """Collapse communities into a weighted coarse graph.

    Returns ``(coarse_image, dense_labels)`` where ``dense_labels[v]`` is
    the coarse vertex of original vertex ``v``.
    """
    unique, dense = np.unique(community, return_inverse=True)
    indptr = image.out_csr.indptr
    indices = image.out_csr.indices.astype(np.int64)
    if EdgeType.OUT in image.attr_bytes:
        weights = np.frombuffer(image.attr_bytes[EdgeType.OUT], dtype="<f4").astype(
            np.float64
        )
    else:
        weights = np.ones(indices.size)
    src = np.repeat(np.arange(image.num_vertices), np.diff(indptr))
    cu = dense[src]
    cv = dense[indices]
    # The undirected store holds each inter-community edge in both
    # directions; keep one representative.  Intra-community edges become
    # the coarse vertex's *self-loop*: both orientations collapse onto the
    # same (c, c) key, so its weight is twice the internal edge weight —
    # exactly the convention that preserves total weight (and therefore
    # modularity's m) across levels.
    keep = cu <= cv
    pair_keys = cu[keep] * unique.size + cv[keep]
    pair_weights = weights[keep]
    agg_keys, inverse = np.unique(pair_keys, return_inverse=True)
    agg_weights = np.zeros(agg_keys.size)
    np.add.at(agg_weights, inverse, pair_weights)
    coarse_edges = np.stack(
        [agg_keys // unique.size, agg_keys % unique.size], axis=1
    )
    coarse = build_undirected(
        coarse_edges,
        int(unique.size),
        name=f"{image.name}-coarse",
        weights=agg_weights.astype(np.float32),
    )
    return coarse, dense


def louvain(
    engine_factory,
    image: GraphImage,
    max_levels: int = 5,
    max_sweeps: int = 10,
) -> LouvainResult:
    """Full multi-level Louvain.

    ``engine_factory(image) -> GraphEngine`` builds an engine per level
    (levels are *different graphs* — the topology changes).  Returns the
    final fine-grained community labels and the achieved modularity.
    """
    if max_levels < 1:
        raise ValueError("need at least one level")
    labels = np.arange(image.num_vertices, dtype=np.int64)
    current = image
    merged: Optional[RunResult] = None
    level_sizes: List[int] = []
    levels = 0
    for _ in range(max_levels):
        engine = engine_factory(current)
        program = LouvainMoveProgram(current, max_sweeps=max_sweeps)
        result = engine.run(program, max_iterations=max_sweeps)
        merged = result if merged is None else merge_results(merged, result)
        levels += 1
        level_sizes.append(int(np.unique(program.community).size))
        if program.moves == 0:
            break
        coarse, dense = _aggregate(current, program.community)
        labels = dense[labels]
        if coarse.num_vertices == current.num_vertices:
            break
        current = coarse
    score = modularity(image, labels)
    return LouvainResult(
        communities=labels,
        modularity=score,
        levels=levels,
        run=merged,
        level_sizes=level_sizes,
    )
