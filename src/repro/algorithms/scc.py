"""Strongly connected components via iterative coloring (extension).

The coloring algorithm (Orzan) is the standard vertex-centric SCC method
and a natural fit for FlashGraph's model — unlike Tarjan's, it needs no
DFS.  Each round has two phases over the *unassigned* vertices:

1. **Color** (:class:`_ColorProgram`): every vertex starts with its own
   ID as color and forward-propagates the *maximum* color to a fixpoint.
   A vertex's final color identifies the highest-ID vertex that can reach
   it.
2. **Claim** (:class:`_ClaimProgram`): each color's root (the vertex
   whose color is its own ID) walks *backward* along in-edges restricted
   to its color; everything it reaches is in its SCC (reachable both
   ways) and gets assigned.

Rounds repeat on the shrinking unassigned set until every vertex has an
SCC id.  Both phases read one edge direction only — the out/in file split
(§3.5.2) pays off directly.
"""

from typing import Tuple

import numpy as np

from repro.algorithms.bc import merge_results
from repro.core.engine import GraphEngine, RunResult
from repro.core.vertex_program import GraphContext, VertexProgram
from repro.graph.page_vertex import PageVertex
from repro.graph.types import EdgeType

#: SCC id sentinel for "not yet assigned".
UNASSIGNED = -1


class _ColorProgram(VertexProgram):
    """Forward max-color propagation over the unassigned subgraph."""

    edge_type = EdgeType.OUT
    combiner = "max"
    state_bytes_per_vertex = 8

    def __init__(self, scc: np.ndarray, color: np.ndarray) -> None:
        self.scc = scc
        self.color = color

    def run(self, g: GraphContext, vertex: int) -> None:
        if self.scc[vertex] == UNASSIGNED:
            g.request_self(vertex, EdgeType.OUT)

    def run_on_vertex(self, g: GraphContext, vertex: int, page_vertex: PageVertex) -> None:
        neighbors = page_vertex.read_edges().astype(np.int64)
        if neighbors.size == 0:
            return
        live = neighbors[self.scc[neighbors] == UNASSIGNED]
        if live.size:
            g.send_message(live, float(self.color[vertex]))

    def run_on_message(self, g: GraphContext, vertex: int, value: float) -> None:
        color = int(value)
        if self.scc[vertex] == UNASSIGNED and color > self.color[vertex]:
            self.color[vertex] = color
            g.activate(np.asarray([vertex]))


class _ClaimProgram(VertexProgram):
    """Backward sweep from each color root, restricted to the color."""

    edge_type = EdgeType.IN
    combiner = "max"
    state_bytes_per_vertex = 8

    def __init__(self, scc: np.ndarray, color: np.ndarray) -> None:
        self.scc = scc
        self.color = color

    def run(self, g: GraphContext, vertex: int) -> None:
        # Activated vertices were just claimed; spread backward.
        g.request_self(vertex, EdgeType.IN)

    def run_on_vertex(self, g: GraphContext, vertex: int, page_vertex: PageVertex) -> None:
        parents = page_vertex.read_edges().astype(np.int64)
        if parents.size == 0:
            return
        mine = self.color[vertex]
        candidates = parents[
            (self.scc[parents] == UNASSIGNED) & (self.color[parents] == mine)
        ]
        if candidates.size:
            g.send_message(candidates, float(mine))

    def run_on_message(self, g: GraphContext, vertex: int, value: float) -> None:
        color = int(value)
        if self.scc[vertex] == UNASSIGNED and self.color[vertex] == color:
            self.scc[vertex] = color
            g.activate(np.asarray([vertex]))


def scc(engine: GraphEngine, max_rounds: int = 10_000) -> Tuple[np.ndarray, RunResult]:
    """Strongly connected components of a directed image.

    Returns ``(labels, result)``; each label is the highest vertex ID in
    its component.
    """
    image = engine.image
    if not image.directed:
        raise ValueError("SCC needs a directed graph (use WCC otherwise)")
    n = image.num_vertices
    scc_ids = np.full(n, UNASSIGNED, dtype=np.int64)
    total: RunResult = None
    rounds = 0
    while (scc_ids == UNASSIGNED).any():
        if rounds >= max_rounds:
            raise RuntimeError("SCC did not converge (max_rounds reached)")
        rounds += 1
        unassigned = np.nonzero(scc_ids == UNASSIGNED)[0]
        color = np.arange(n, dtype=np.int64)

        coloring = _ColorProgram(scc_ids, color)
        result = engine.run(coloring, initial_active=unassigned)
        total = result if total is None else merge_results(total, result)

        roots = unassigned[color[unassigned] == unassigned]
        scc_ids[roots] = roots
        claiming = _ClaimProgram(scc_ids, color)
        result = engine.run(claiming, initial_active=roots)
        total = result if total is None else merge_results(total, result)
    return scc_ids, total
