"""Betweenness centrality from a single source (§4).

The paper computes BC as a BFS followed by a back propagation (Brandes
[6]) from a single source vertex, reading both edge directions: the
forward sweep uses out-edges to count shortest paths, the backward sweep
uses in-edges to accumulate dependencies level by level.

Two vertex programs run back to back over shared state arrays:

- :class:`_ForwardProgram` — level-synchronous BFS accumulating ``sigma``
  (number of shortest source→v paths) via summed messages;
- :class:`_BackwardProgram` — processes levels in descending order; each
  vertex ``w`` sends ``(1 + delta[w]) / sigma[w]`` to the in-neighbors one
  level closer to the source, which scale it by their own ``sigma``.
"""

from typing import Tuple

import numpy as np

from repro.core.engine import GraphEngine, RunResult
from repro.core.vertex_program import GraphContext, VertexProgram
from repro.graph.page_vertex import PageVertex
from repro.graph.types import EdgeType


class _ForwardProgram(VertexProgram):
    """BFS that counts shortest paths (sigma)."""

    edge_type = EdgeType.OUT
    combiner = "sum"
    state_bytes_per_vertex = 12  # dist (i4) + sigma (f8)

    def __init__(self, num_vertices: int, source: int) -> None:
        self.dist = np.full(num_vertices, -1, dtype=np.int64)
        self.sigma = np.zeros(num_vertices)
        self.dist[source] = 0
        self.sigma[source] = 1.0

    def run(self, g: GraphContext, vertex: int) -> None:
        # Active vertices are exactly the frontier: freshly-assigned
        # distance, final sigma.  Expand along out-edges.
        g.request_self(vertex, EdgeType.OUT)

    def run_on_vertex(self, g: GraphContext, vertex: int, page_vertex: PageVertex) -> None:
        neighbors = page_vertex.read_edges()
        if neighbors.size:
            g.send_message(neighbors, float(self.sigma[vertex]))

    def run_on_message(self, g: GraphContext, vertex: int, value: float) -> None:
        # All same-iteration senders sit one level above; older vertices
        # ignore the message (their shortest paths are already counted).
        if self.dist[vertex] == -1:
            self.dist[vertex] = g.iteration + 1
            self.sigma[vertex] = value
            g.activate(np.asarray([vertex]))


class _BackwardProgram(VertexProgram):
    """Dependency accumulation, one BFS level per iteration, far to near."""

    edge_type = EdgeType.IN
    combiner = "sum"
    state_bytes_per_vertex = 8  # delta (f8)

    def __init__(self, dist: np.ndarray, sigma: np.ndarray, source: int) -> None:
        self.dist = dist
        self.sigma = sigma
        self.source = source
        self.delta = np.zeros(dist.size)
        self.max_level = int(dist.max()) if dist.size else 0

    def level_vertices(self, level: int) -> np.ndarray:
        return np.nonzero(self.dist == level)[0]

    def run(self, g: GraphContext, vertex: int) -> None:
        g.notify_iteration_end()
        if self.dist[vertex] <= 0:
            return  # the source accumulates nothing further
        g.request_self(vertex, EdgeType.IN)

    def run_on_vertex(self, g: GraphContext, vertex: int, page_vertex: PageVertex) -> None:
        parents = page_vertex.read_edges()
        if parents.size == 0:
            return
        # Filtering by level and the dependency arithmetic are real
        # per-edge floating-point work on top of the list parse — this is
        # why BC burns more CPU than BFS for the same I/O pattern (§5.1).
        g.charge_edges(2 * parents.size)
        # Predecessors on shortest paths: in-neighbors one level closer.
        on_path = parents[self.dist[parents] == self.dist[vertex] - 1]
        if on_path.size:
            share = (1.0 + self.delta[vertex]) / self.sigma[vertex]
            g.send_message(on_path, share)

    def run_on_message(self, g: GraphContext, vertex: int, value: float) -> None:
        self.delta[vertex] += self.sigma[vertex] * value

    def run_on_iteration_end(self, g: GraphContext) -> None:
        next_level = self.max_level - g.iteration - 1
        if next_level > 0:
            g.activate(self.level_vertices(next_level))


#: Public alias: the forward phase is the program users parameterise.
BetweennessCentralityProgram = _ForwardProgram


def betweenness_centrality(
    engine: GraphEngine, source: int = 0
) -> Tuple[np.ndarray, RunResult]:
    """Single-source Brandes dependencies ``delta_source(v)``.

    Summing this over all sources yields exact betweenness centrality;
    the paper (and this reproduction) evaluates one source.
    """
    forward = _ForwardProgram(engine.image.num_vertices, source)
    fwd_result = engine.run(forward, initial_active=np.asarray([source]))
    backward = _BackwardProgram(forward.dist, forward.sigma, source)
    start = backward.level_vertices(backward.max_level)
    if backward.max_level > 0 and start.size:
        bwd_result = engine.run(backward, initial_active=start)
        result = merge_results(fwd_result, bwd_result)
    else:
        result = fwd_result
    # Brandes accumulates a dependency at the source too, but betweenness
    # excludes endpoints: the source's own score is conventionally zero.
    backward.delta[source] = 0.0
    return backward.delta, result


def merge_results(first: RunResult, second: RunResult) -> RunResult:
    """Combine two phases of one algorithm into a single report."""
    runtime = first.runtime + second.runtime
    busy = first.cpu_busy + second.cpu_busy
    bytes_read = first.bytes_read + second.bytes_read
    hits = first.counters.get("cache.hits", 0) + second.counters.get("cache.hits", 0)
    misses = first.counters.get("cache.misses", 0) + second.counters.get(
        "cache.misses", 0
    )
    counters = dict(first.counters)
    for name, value in second.counters.items():
        counters[name] = counters.get(name, 0.0) + value
    memory = dict(first.memory)
    for name, value in second.memory.items():
        memory[name] = max(memory.get(name, 0.0), value)
    return RunResult(
        runtime=runtime,
        iterations=first.iterations + second.iterations,
        cpu_busy=busy,
        cpu_utilization=(
            (first.cpu_utilization * first.runtime + second.cpu_utilization * second.runtime)
            / runtime
            if runtime
            else 0.0
        ),
        bytes_read=bytes_read,
        io_throughput=bytes_read / runtime if runtime else 0.0,
        io_utilization=(
            (first.io_utilization * first.runtime + second.io_utilization * second.runtime)
            / runtime
            if runtime
            else 0.0
        ),
        cache_hit_rate=hits / (hits + misses) if hits + misses else 0.0,
        memory=memory,
        counters=counters,
    )
