"""k-core decomposition by peeling (extension beyond the paper's six apps).

The k-core of a graph is the maximal subgraph in which every vertex has
degree at least ``k``.  Peeling is naturally vertex-centric and
FlashGraph-shaped: a vertex that drops below ``k`` removes itself, reads
its own edge list once, and messages each neighbor to decrement — exactly
the selective-access pattern the engine optimises.

Operates on undirected graphs (build the image with
:func:`~repro.graph.builder.build_undirected`).
"""

from typing import Tuple

import numpy as np

from repro.core.engine import GraphEngine, RunResult
from repro.core.vertex_program import GraphContext, VertexProgram
from repro.graph.page_vertex import PageVertex
from repro.graph.types import EdgeType


class KCoreProgram(VertexProgram):
    """Iterative peeling of vertices below degree ``k``."""

    edge_type = EdgeType.OUT
    combiner = "sum"
    state_bytes_per_vertex = 5  # alive byte + remaining degree

    def __init__(self, num_vertices: int, k: int, degrees: np.ndarray) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self.alive = np.ones(num_vertices, dtype=bool)
        self.remaining = np.asarray(degrees, dtype=np.int64).copy()

    def run(self, g: GraphContext, vertex: int) -> None:
        if self.alive[vertex] and self.remaining[vertex] < self.k:
            self.alive[vertex] = False
            g.request_self(vertex, EdgeType.OUT)

    def run_on_vertex(self, g: GraphContext, vertex: int, page_vertex: PageVertex) -> None:
        neighbors = page_vertex.read_edges()
        if neighbors.size:
            g.send_message(neighbors, 1.0)

    def run_on_message(self, g: GraphContext, vertex: int, value: float) -> None:
        if self.alive[vertex]:
            self.remaining[vertex] -= int(round(value))
            g.activate(np.asarray([vertex]))

    # -- batched fast path (observationally identical to the scalar
    # methods above) ----------------------------------------------------

    def run_batch(self, g: GraphContext, vertices: np.ndarray) -> None:
        peeled = vertices[self.alive[vertices] & (self.remaining[vertices] < self.k)]
        self.alive[peeled] = False
        g.request_self_batch(peeled, EdgeType.OUT)

    def run_on_vertices(self, g: GraphContext, batch) -> None:
        g.send_message_batch(
            batch.read_edges_concat(),
            np.ones(batch.total_edges),
            batch.degrees,
        )

    def run_on_messages(self, g: GraphContext, dests: np.ndarray, values: np.ndarray) -> np.ndarray:
        alive = self.alive[dests]
        # Message sums are exact small integers; rint matches the scalar
        # banker's ``round``.
        self.remaining[dests[alive]] -= np.rint(values[alive]).astype(np.int64)
        return alive

    @property
    def core_size(self) -> int:
        """Vertices surviving in the k-core."""
        return int(self.alive.sum())


def kcore(engine: GraphEngine, k: int) -> Tuple[np.ndarray, RunResult]:
    """Mask of vertices belonging to the k-core of an undirected image."""
    image = engine.image
    if image.directed:
        raise ValueError("k-core peeling expects an undirected image")
    # Self-loops do not contribute to core degree.
    degrees = image.out_csr.degrees().astype(np.int64)
    for vertex in range(image.num_vertices):
        neighbors = image.out_csr.neighbors(vertex)
        if neighbors.size and np.any(neighbors == vertex):
            degrees[vertex] -= 1
    program = KCoreProgram(image.num_vertices, k, degrees)
    result = engine.run(program)
    return program.alive, result
