"""Per-page checksums for the simulated SSD image.

Commodity SSDs return bad data without an error often enough that a
billion-node job cannot trust the device's own ECC: FlashGraph's
production successor (Graphyti) checksums every page end to end.  This
module is that layer for the simulation: every SAFS page of every
registered file carries a splitmix64-derived checksum, computed once at
registration and verified on every read that fetched pages from the
devices.

Two things are verified on a fetch:

- the *actual bytes* — a real mismatch means the simulation itself broke
  an invariant (file buffers are immutable), so it raises
  :class:`IntegrityError` loudly rather than recovering;
- the *injected rot* — a :class:`~repro.sim.faults.SilentCorruption`
  event marks flash pages as rotted, which the scheduler surfaces as a
  ``"corrupt"`` completion and recovers from via parity reconstruction
  (:mod:`repro.sim.parity`) or, without parity, a clean abort.

Checksumming is engaged only when the stack can need it (a fault plan or
parity is attached); a bare fault-free stack skips it entirely, keeping
the legacy hot path byte-for-byte and counter-for-counter identical.
"""

from typing import Dict, Union

import numpy as np

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_LANE = np.uint64(0x9E3779B97F4A7C15)


def _finalize(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer, vectorized over a u64 array."""
    x = x ^ (x >> np.uint64(30))
    x = x * _MIX1
    x = x ^ (x >> np.uint64(27))
    x = x * _MIX2
    x = x ^ (x >> np.uint64(31))
    return x


def page_checksums(
    data: Union[bytes, bytearray, memoryview], page_size: int
) -> np.ndarray:
    """One 64-bit checksum per ``page_size`` page of ``data``.

    Pages are padded with zeros to a u64 boundary; each 8-byte lane is
    weighted by a position-dependent odd multiplier before the fold so
    that swapping two words changes the sum, then the fold is finalized
    with splitmix64 and salted with the page's true byte length (a short
    tail page never collides with its padded twin).
    """
    if page_size <= 0 or page_size % 8:
        raise ValueError("page size must be a positive multiple of 8")
    raw = np.frombuffer(data, dtype=np.uint8)
    num_pages = max(1, -(-raw.size // page_size)) if raw.size else 0
    if num_pages == 0:
        return np.zeros(0, dtype=np.uint64)
    padded = np.zeros(num_pages * page_size, dtype=np.uint8)
    padded[: raw.size] = raw
    words = padded.view("<u8").reshape(num_pages, page_size // 8)
    lanes = (np.arange(words.shape[1], dtype=np.uint64) * _LANE) | np.uint64(1)
    with np.errstate(over="ignore"):
        mixed = _finalize(words * lanes)
        folded = np.bitwise_xor.reduce(mixed, axis=1)
        lengths = np.full(num_pages, page_size, dtype=np.uint64)
        tail = raw.size - (num_pages - 1) * page_size
        lengths[-1] = tail
        return _finalize(folded ^ (lengths * _LANE))


def page_checksum(data: Union[bytes, bytearray, memoryview]) -> int:
    """Checksum one page's bytes (padded to the next u64 boundary)."""
    raw = bytes(data)
    size = max(8, -(-len(raw) // 8) * 8)
    padded = raw + b"\x00" * (size - len(raw))
    words = np.frombuffer(padded, dtype="<u8")
    lanes = (np.arange(words.size, dtype=np.uint64) * _LANE) | np.uint64(1)
    with np.errstate(over="ignore"):
        folded = np.bitwise_xor.reduce(_finalize(words * lanes))
        value = _finalize(
            np.asarray(folded ^ (np.uint64(len(raw)) * _LANE), dtype=np.uint64)
        )
    return int(value)


class IntegrityError(RuntimeError):
    """The *actual* bytes of a page no longer match their checksum.

    This is not an injected fault — injected rot is surfaced as a
    ``"corrupt"`` completion and recovered.  A genuine mismatch means a
    simulation invariant broke (file buffers are immutable), so it is
    raised immediately instead of being retried.
    """


class IntegrityMap:
    """Checksums of every SAFS page of every registered file."""

    def __init__(self, page_size: int) -> None:
        if page_size <= 0:
            raise ValueError("page size must be positive")
        self.page_size = page_size
        self._sums: Dict[int, np.ndarray] = {}

    def register(self, file_id: int, data: Union[bytes, memoryview]) -> None:
        """Checksum every page of a newly registered file."""
        if file_id in self._sums:
            raise ValueError(f"file {file_id} already has checksums")
        if self.page_size % 8 == 0:
            self._sums[file_id] = page_checksums(data, self.page_size)
        else:  # odd page sizes fall back to the scalar path, page by page
            raw = memoryview(bytes(data))
            pages = -(-len(raw) // self.page_size)
            self._sums[file_id] = np.asarray(
                [
                    page_checksum(
                        raw[i * self.page_size : (i + 1) * self.page_size]
                    )
                    for i in range(pages)
                ],
                dtype=np.uint64,
            )

    def covers(self, file_id: int) -> bool:
        """Whether the file was registered with this map."""
        return file_id in self._sums

    def num_pages(self, file_id: int) -> int:
        """Pages checksummed for ``file_id``."""
        return int(self._sums[file_id].size)

    def verify(
        self, file_id: int, page_no: int, data: Union[bytes, memoryview]
    ) -> None:
        """Check one page's actual bytes against its stored checksum."""
        expected = self._sums[file_id]
        if not 0 <= page_no < expected.size:
            raise IntegrityError(
                f"file {file_id} has no checksum for page {page_no}"
            )
        actual = page_checksum(data)
        if actual != int(expected[page_no]):
            raise IntegrityError(
                f"file {file_id} page {page_no}: checksum mismatch "
                f"(stored {int(expected[page_no]):#018x}, read {actual:#018x})"
            )
