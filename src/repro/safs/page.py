"""SAFS pages and file images.

A :class:`SAFSFile` is the simulated on-SSD content of one file: a flat
byte buffer (the graph builder produces these).  SAFS divides a file into
fixed-size pages — 4KB by default, variable for the page-size experiment of
Figure 13 — and the page is the smallest I/O unit the engine can request.

Because the flash translation layer operates on 4KB flash pages regardless
of the SAFS page size, reading one SAFS page costs
``max(1, safs_page_size / 4096)`` flash pages at the device (§5.4.2: a page
smaller than 4KB does not increase the I/O rate of SSDs).
"""

from dataclasses import dataclass
from typing import Union

from repro.sim.ssd import FLASH_PAGE_SIZE

#: Default SAFS page size; the paper concludes 4KB is the right choice.
DEFAULT_PAGE_SIZE = FLASH_PAGE_SIZE


def flash_pages_per_safs_page(page_size: int) -> int:
    """Flash pages the device must move to deliver one SAFS page."""
    if page_size <= 0:
        raise ValueError("page size must be positive")
    return max(1, (page_size + FLASH_PAGE_SIZE - 1) // FLASH_PAGE_SIZE)


class SAFSFile:
    """The simulated content of one file stored on the SSD array."""

    _next_id = 0

    def __init__(self, name: str, data: Union[bytes, bytearray, memoryview]) -> None:
        self.name = name
        self._data = bytes(data)
        self.file_id = SAFSFile._next_id
        SAFSFile._next_id += 1

    @property
    def size(self) -> int:
        """File length in bytes."""
        return len(self._data)

    def num_pages(self, page_size: int) -> int:
        """Number of SAFS pages of ``page_size`` bytes covering the file."""
        if page_size <= 0:
            raise ValueError("page size must be positive")
        return (len(self._data) + page_size - 1) // page_size

    def read(self, offset: int, length: int) -> memoryview:
        """Bytes ``[offset, offset + length)`` of the file, zero-copy.

        Raises :class:`ValueError` when the range escapes the file — SAFS
        never silently truncates a read.
        """
        if offset < 0 or length < 0:
            raise ValueError("offset and length must be non-negative")
        if offset + length > len(self._data):
            raise ValueError(
                f"read past EOF: [{offset}, {offset + length}) of "
                f"{self.name!r} (size {len(self._data)})"
            )
        return memoryview(self._data)[offset : offset + length]

    def read_page(self, page_no: int, page_size: int) -> memoryview:
        """The content of SAFS page ``page_no`` (may be short at EOF)."""
        if page_no < 0:
            raise ValueError("page numbers are non-negative")
        start = page_no * page_size
        if start >= len(self._data):
            raise ValueError(f"page {page_no} is past EOF of {self.name!r}")
        end = min(start + page_size, len(self._data))
        return memoryview(self._data)[start:end]

    def __repr__(self) -> str:
        return f"SAFSFile(name={self.name!r}, size={self.size})"


@dataclass(frozen=True)
class Page:
    """One cached SAFS page: identity plus a zero-copy view of its bytes."""

    file_id: int
    page_no: int
    data: memoryview

    @property
    def key(self) -> tuple:
        """Cache key identifying this page."""
        return (self.file_id, self.page_no)
