"""The SAFS write path: loading graph images onto the array.

FlashGraph's design minimises writes — SSDs wear out, and consumer drives
write slower than they read (§3).  The only bulk write in the system's
life is *graph construction*: serialising the edge-list files onto the
array once, after which a single external-memory structure serves every
algorithm (§3.5.2).

This module models that construction: sequential streaming writes striped
over the devices, a write-amplification factor for the FTL, and a wear
counter so tests can assert the engine never writes during computation.
"""

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.obs import registry as reg
from repro.sim.ssd import FLASH_PAGE_SIZE
from repro.sim.ssd_array import SSDArray
from repro.sim.stats import StatsCollector


@dataclass(frozen=True)
class WriteModel:
    """Write-side performance of the array's devices.

    Consumer SSDs of the paper's era wrote at roughly half their read
    bandwidth; the FTL's write amplification consumes additional flash
    program cycles that count toward wear but not host time.
    """

    #: Sustained sequential write bandwidth per device, bytes/second.
    seq_write_bandwidth: float = 250e6
    #: Flash pages programmed per host page written (FTL overhead).
    write_amplification: float = 1.1
    #: Program/erase cycles a consumer drive endures per flash page.
    endurance_cycles: int = 3000


class GraphLoader:
    """Streams graph files onto the simulated array and accounts wear."""

    def __init__(
        self,
        array: SSDArray,
        model: Optional[WriteModel] = None,
        stats: Optional[StatsCollector] = None,
    ) -> None:
        self.array = array
        self.model = model or WriteModel()
        self.stats = stats if stats is not None else StatsCollector()

    def write_time(self, num_bytes: int) -> float:
        """Seconds to stream ``num_bytes`` sequentially across the array."""
        if num_bytes < 0:
            raise ValueError("cannot write a negative byte count")
        aggregate = self.array.config.num_ssds * self.model.seq_write_bandwidth
        return num_bytes / aggregate

    def load_image(self, image) -> Tuple[float, int]:
        """Write a :class:`~repro.graph.builder.GraphImage`'s files.

        Returns ``(seconds, flash_pages_programmed)`` and accumulates
        ``write.*`` counters.  Pages programmed include FTL write
        amplification — the number that matters for wear.
        """
        total_bytes = image.storage_bytes()
        seconds = self.write_time(total_bytes)
        host_pages = (total_bytes + FLASH_PAGE_SIZE - 1) // FLASH_PAGE_SIZE
        programmed = int(host_pages * self.model.write_amplification)
        self.stats.add(reg.WRITE_BYTES, total_bytes)
        self.stats.add(reg.WRITE_HOST_PAGES, host_pages)
        self.stats.add(reg.WRITE_FLASH_PAGES_PROGRAMMED, programmed)
        self.stats.add(reg.WRITE_SECONDS, seconds)
        return seconds, programmed

    def wear_fraction(self) -> float:
        """Fraction of the array's endurance consumed by writes so far.

        The array's total endurance budget is ``devices x capacity_pages x
        endurance_cycles``; we approximate capacity from the bytes written
        (a loader only ever writes each image once, so this is the
        conservative per-image wear).
        """
        programmed = self.stats.get(reg.WRITE_FLASH_PAGES_PROGRAMMED)
        if programmed == 0:
            return 0.0
        host_pages = self.stats.get(reg.WRITE_HOST_PAGES)
        # Each page location endures `endurance_cycles` programs; writing
        # a page once consumes 1/endurance of that location's life.
        return programmed / (host_pages * self.model.endurance_cycles)


def assert_read_only_computation(stats: StatsCollector) -> None:
    """Raise if any write counter moved during computation.

    The engine's whole-run invariant (§3: "Minimize write"): after graph
    construction, FlashGraph never writes to SSDs.  Tests and the harness
    call this after algorithm runs.
    """
    written = stats.get("write.bytes.computation", 0.0)
    if written:
        raise AssertionError(
            f"semi-external computation wrote {written} bytes to SSDs; "
            "the SEM model must not write during algorithms"
        )
