"""I/O request representation and FlashGraph's conservative merge rule.

FlashGraph merges I/O requests *conservatively*: two requests are joined
only when they touch the same SAFS page or adjacent pages (§3.6).  A merged
request therefore never fetches a page no constituent asked for, yet one
issued request can range from a single page to many megabytes — exactly the
flexibility the paper credits for adapting to different access patterns.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.safs.page import SAFSFile
from repro.safs.user_task import UserTask


@dataclass
class IORequest:
    """A read of ``[offset, offset + length)`` from ``file``.

    Carries the SAFS user task to run on completion.  Requests are
    created by the engine on behalf of vertex programs that called
    ``request_vertices``.
    """

    file: SAFSFile
    offset: int
    length: int
    task: UserTask = field(default_factory=UserTask)

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError("request offset cannot be negative")
        if self.length <= 0:
            raise ValueError("request length must be positive")
        if self.offset + self.length > self.file.size:
            raise ValueError(
                f"request [{self.offset}, {self.offset + self.length}) escapes "
                f"{self.file.name!r} (size {self.file.size})"
            )

    def page_span(self, page_size: int) -> Tuple[int, int]:
        """``(first_page, last_page)`` (inclusive) touched by this request."""
        if page_size <= 0:
            raise ValueError("page size must be positive")
        first = self.offset // page_size
        last = (self.offset + self.length - 1) // page_size
        return first, last

    @property
    def end(self) -> int:
        """One past the last byte of the request."""
        return self.offset + self.length


@dataclass
class MergedRequest:
    """One or more page-adjacent requests issued to the device together."""

    file: SAFSFile
    first_page: int
    last_page: int
    parts: List[IORequest]

    @property
    def num_pages(self) -> int:
        """Pages covered by the merged span."""
        return self.last_page - self.first_page + 1

    def covers(self, request: IORequest, page_size: int) -> bool:
        """Whether ``request`` lies entirely inside this merged span."""
        first, last = request.page_span(page_size)
        return (
            request.file.file_id == self.file.file_id
            and first >= self.first_page
            and last <= self.last_page
        )


def merge_requests(
    requests: Sequence[IORequest],
    page_size: int,
    adjacency_gap: int = 1,
    window: Optional[int] = None,
) -> List[MergedRequest]:
    """Merge ``requests`` under FlashGraph's conservative rule.

    Requests are sorted by ``(file, offset)`` and joined while the next
    request starts within ``adjacency_gap`` pages of the current span's
    last page — the default ``1`` means "same page or adjacent page", a
    gap of ``0`` would merge only overlapping spans, and larger gaps model
    more aggressive (bandwidth-wasting) merging used in ablations.

    ``window`` bounds how many queued requests the merger may look at
    before flushing a span, modelling filesystem- or block-level mergers
    that lack FlashGraph's global view (Figure 12): within one window the
    sort is local, so spans adjacent across window boundaries stay split.
    """
    if page_size <= 0:
        raise ValueError("page size must be positive")
    if adjacency_gap < 0:
        raise ValueError("adjacency_gap cannot be negative")
    if window is not None and window <= 0:
        raise ValueError("window must be positive when given")
    if not requests:
        return []

    merged: List[MergedRequest] = []
    if window is None:
        chunks: List[Sequence[IORequest]] = [requests]
    else:
        chunks = [requests[i : i + window] for i in range(0, len(requests), window)]

    for chunk in chunks:
        ordered = sorted(chunk, key=lambda r: (r.file.file_id, r.offset))
        current: Optional[MergedRequest] = None
        for request in ordered:
            first, last = request.page_span(page_size)
            if (
                current is not None
                and request.file.file_id == current.file.file_id
                and first <= current.last_page + adjacency_gap
            ):
                if last > current.last_page:
                    current.last_page = last
                current.parts.append(request)
            else:
                current = MergedRequest(request.file, first, last, [request])
                merged.append(current)
    return merged


@dataclass
class MergedSpans:
    """The array form of a merged wave (one entry per issued span).

    ``order`` is the stable ``(file, offset)`` permutation of the input
    elements; ``span_of_part[i]`` maps sorted element ``i`` to its span.
    The object-based :func:`merge_requests` remains the reference
    implementation — the property tests assert span-for-span agreement.
    """

    #: File id of each span.
    file_ids: np.ndarray
    #: First and last page (inclusive) of each span.
    first_pages: np.ndarray
    last_pages: np.ndarray
    #: Stable sort permutation applied to the input elements.
    order: np.ndarray
    #: Span index of each *sorted* element.
    span_of_part: np.ndarray

    @property
    def num_spans(self) -> int:
        return int(self.file_ids.size)


def merge_request_arrays(
    file_ids: np.ndarray,
    offsets: np.ndarray,
    lengths: np.ndarray,
    page_size: int,
    adjacency_gap: int = 1,
    window: Optional[int] = None,
) -> MergedSpans:
    """Vectorised :func:`merge_requests` over parallel request arrays.

    Implements the identical conservative rule without materialising
    :class:`IORequest` objects: a stable ``(file, offset)`` argsort, then
    span breaks wherever the file changes or the next request starts more
    than ``adjacency_gap`` pages past the running span maximum.  A global
    ``maximum.accumulate`` stands in for the per-span maximum: a span
    break at ``i`` requires ``first[i] > cummax[i-1] + gap``, and firsts
    are non-decreasing per file, so pages from earlier spans can never
    reach far enough forward to cause a false merge.

    ``window`` reproduces the bounded-queue merging of
    :func:`merge_requests` by restarting the sort-and-merge every
    ``window`` elements of the *input* order.
    """
    if page_size <= 0:
        raise ValueError("page size must be positive")
    if adjacency_gap < 0:
        raise ValueError("adjacency_gap cannot be negative")
    if window is not None and window <= 0:
        raise ValueError("window must be positive when given")
    file_ids = np.asarray(file_ids, dtype=np.int64)
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    n = offsets.size
    empty = np.zeros(0, dtype=np.int64)
    if n == 0:
        return MergedSpans(empty, empty, empty.copy(), empty.copy(), empty.copy())

    if window is None or window >= n:
        starts = [0, n]
    else:
        starts = list(range(0, n, window)) + [n]

    all_order: List[np.ndarray] = []
    all_span: List[np.ndarray] = []
    all_fids: List[np.ndarray] = []
    all_first: List[np.ndarray] = []
    all_last: List[np.ndarray] = []
    span_base = 0
    for lo, hi in zip(starts[:-1], starts[1:]):
        sl = slice(lo, hi)
        order = np.lexsort((offsets[sl], file_ids[sl])) + lo
        first = offsets[order] // page_size
        last = (offsets[order] + lengths[order] - 1) // page_size
        fids = file_ids[order]
        # Lift each file's pages into a disjoint band so the running
        # maximum cannot leak across the sorted file boundary (a later
        # file restarts at offset 0, below the previous file's maximum).
        stride = int(last.max()) + adjacency_gap + 2
        lift = fids * stride
        cummax = np.maximum.accumulate(last + lift)
        breaks = np.empty(order.size, dtype=bool)
        breaks[0] = True
        breaks[1:] = (fids[1:] != fids[:-1]) | (
            first[1:] + lift[1:] > cummax[:-1] + adjacency_gap
        )
        span_starts = np.nonzero(breaks)[0]
        all_order.append(order)
        all_span.append(span_base + np.cumsum(breaks) - 1)
        all_fids.append(fids[span_starts])
        all_first.append(first[span_starts])
        all_last.append(np.maximum.reduceat(last, span_starts))
        span_base += span_starts.size

    return MergedSpans(
        file_ids=np.concatenate(all_fids),
        first_pages=np.concatenate(all_first),
        last_pages=np.concatenate(all_last),
        order=np.concatenate(all_order),
        span_of_part=np.concatenate(all_span),
    )
