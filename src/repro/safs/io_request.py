"""I/O request representation and FlashGraph's conservative merge rule.

FlashGraph merges I/O requests *conservatively*: two requests are joined
only when they touch the same SAFS page or adjacent pages (§3.6).  A merged
request therefore never fetches a page no constituent asked for, yet one
issued request can range from a single page to many megabytes — exactly the
flexibility the paper credits for adapting to different access patterns.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.safs.page import SAFSFile
from repro.safs.user_task import UserTask


@dataclass
class IORequest:
    """A read of ``[offset, offset + length)`` from ``file``.

    Carries the SAFS user task to run on completion.  Requests are
    created by the engine on behalf of vertex programs that called
    ``request_vertices``.
    """

    file: SAFSFile
    offset: int
    length: int
    task: UserTask = field(default_factory=UserTask)

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError("request offset cannot be negative")
        if self.length <= 0:
            raise ValueError("request length must be positive")
        if self.offset + self.length > self.file.size:
            raise ValueError(
                f"request [{self.offset}, {self.offset + self.length}) escapes "
                f"{self.file.name!r} (size {self.file.size})"
            )

    def page_span(self, page_size: int) -> Tuple[int, int]:
        """``(first_page, last_page)`` (inclusive) touched by this request."""
        if page_size <= 0:
            raise ValueError("page size must be positive")
        first = self.offset // page_size
        last = (self.offset + self.length - 1) // page_size
        return first, last

    @property
    def end(self) -> int:
        """One past the last byte of the request."""
        return self.offset + self.length


@dataclass
class MergedRequest:
    """One or more page-adjacent requests issued to the device together."""

    file: SAFSFile
    first_page: int
    last_page: int
    parts: List[IORequest]

    @property
    def num_pages(self) -> int:
        """Pages covered by the merged span."""
        return self.last_page - self.first_page + 1

    def covers(self, request: IORequest, page_size: int) -> bool:
        """Whether ``request`` lies entirely inside this merged span."""
        first, last = request.page_span(page_size)
        return (
            request.file.file_id == self.file.file_id
            and first >= self.first_page
            and last <= self.last_page
        )


def merge_requests(
    requests: Sequence[IORequest],
    page_size: int,
    adjacency_gap: int = 1,
    window: Optional[int] = None,
) -> List[MergedRequest]:
    """Merge ``requests`` under FlashGraph's conservative rule.

    Requests are sorted by ``(file, offset)`` and joined while the next
    request starts within ``adjacency_gap`` pages of the current span's
    last page — the default ``1`` means "same page or adjacent page", a
    gap of ``0`` would merge only overlapping spans, and larger gaps model
    more aggressive (bandwidth-wasting) merging used in ablations.

    ``window`` bounds how many queued requests the merger may look at
    before flushing a span, modelling filesystem- or block-level mergers
    that lack FlashGraph's global view (Figure 12): within one window the
    sort is local, so spans adjacent across window boundaries stay split.
    """
    if page_size <= 0:
        raise ValueError("page size must be positive")
    if adjacency_gap < 0:
        raise ValueError("adjacency_gap cannot be negative")
    if window is not None and window <= 0:
        raise ValueError("window must be positive when given")
    if not requests:
        return []

    merged: List[MergedRequest] = []
    if window is None:
        chunks: List[Sequence[IORequest]] = [requests]
    else:
        chunks = [requests[i : i + window] for i in range(0, len(requests), window)]

    for chunk in chunks:
        ordered = sorted(chunk, key=lambda r: (r.file.file_id, r.offset))
        current: Optional[MergedRequest] = None
        for request in ordered:
            first, last = request.page_span(page_size)
            if (
                current is not None
                and request.file.file_id == current.file.file_id
                and first <= current.last_page + adjacency_gap
            ):
                if last > current.last_page:
                    current.last_page = last
                current.parts.append(request)
            else:
                current = MergedRequest(request.file, first, last, [request])
                merged.append(current)
    return merged
