"""The asynchronous user-task I/O abstraction (§3.1).

With Linux AIO an application must allocate user-space buffers up front and
copy completed data into them; with many requests in flight the empty
buffers alone consume significant memory.  SAFS instead attaches a
*user task* to each request and runs the task inside the filesystem against
the page cache when the request completes — no allocation, no copy.

In this reproduction the task carries an ``on_complete`` callable plus an
opaque context.  The engine charges the task's CPU time to the worker that
consumes the completion, which is how computation/I/O overlap is modelled.
"""

from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass
class UserTask:
    """A computation to run inside SAFS when its I/O request completes.

    ``on_complete(data, context, completion_time)`` receives a zero-copy
    view of the requested bytes straight from the page cache.
    """

    on_complete: Optional[Callable[[memoryview, Any, float], None]] = None
    context: Any = None

    def run(self, data: memoryview, completion_time: float) -> None:
        """Execute the task against ``data`` available at ``completion_time``."""
        if self.on_complete is not None:
            self.on_complete(data, self.context, completion_time)


@dataclass(frozen=True)
class CompletedTask:
    """One finished request handed back to the engine, in completion order.

    Requests are byte-granular: ``data`` spans exactly the bytes asked
    for, which under a compressed edge-list format (v2) is the *encoded*
    record — smaller than the neighbor array it decodes to.  The engine
    charges decode CPU per byte of :attr:`num_bytes` in that case.
    """

    #: The originating request (an :class:`~repro.safs.io_request.IORequest`).
    request: Any
    #: Zero-copy view of the requested byte range.
    data: memoryview
    #: Virtual time at which the data became available in the page cache.
    completion_time: float
    #: Whether every page of the request was already cached.
    cache_hit: bool = field(default=False)

    @property
    def num_bytes(self) -> int:
        """Length of the served byte range (compressed bytes under v2)."""
        return len(self.data)
