"""SAFS — the set-associative file system (Zheng et al. [32], [31]).

SAFS is a user-space filesystem for SSD arrays: dedicated per-SSD I/O
threads, a scalable set-associative page cache, and an asynchronous
*user-task* I/O interface in which a user-defined task runs inside the
filesystem against the page cache when its request completes — no buffer
allocation, no copy.

This package implements SAFS faithfully over the simulated SSD array:

- :mod:`repro.safs.page` — SAFS pages over an in-memory flash image.
- :mod:`repro.safs.page_cache` — the set-associative page cache; hit/miss
  behaviour is computed exactly, page by page.
- :mod:`repro.safs.io_request` — request representation plus FlashGraph's
  conservative merge rule (same or adjacent pages only).
- :mod:`repro.safs.io_scheduler` — dispatch to per-device queues, optional
  filesystem-level merging within a bounded queue window.
- :mod:`repro.safs.user_task` — the async user-task abstraction.
- :mod:`repro.safs.filesystem` — the SAFS facade the engine talks to.
- :mod:`repro.safs.integrity` — per-page splitmix64 checksums verified on
  every device fetch when a fault plan or parity layout is attached
  (see ``docs/recovery.md``).
"""

from repro.safs.filesystem import SAFS, SAFSConfig
from repro.safs.integrity import (
    IntegrityError,
    IntegrityMap,
    page_checksum,
    page_checksums,
)
from repro.safs.io_request import IORequest, MergedRequest, merge_requests
from repro.safs.page import Page, SAFSFile
from repro.safs.page_cache import PageCache, PageCacheConfig
from repro.safs.user_task import CompletedTask, UserTask

__all__ = [
    "SAFS",
    "SAFSConfig",
    "IntegrityError",
    "IntegrityMap",
    "page_checksum",
    "page_checksums",
    "IORequest",
    "MergedRequest",
    "merge_requests",
    "Page",
    "SAFSFile",
    "PageCache",
    "PageCacheConfig",
    "CompletedTask",
    "UserTask",
]
