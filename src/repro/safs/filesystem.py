"""The SAFS facade the graph engine talks to.

Responsibilities:

- file namespace (create/open of simulated on-SSD files),
- the asynchronous submit path: requests in, :class:`CompletedTask`s out,
  in completion order, with CPU issue costs accounted,
- both merge disciplines used by the Figure 12 ablation — requests merged
  by the caller (FlashGraph's engine-level merging) or merged here within a
  bounded queue window at kernel-like CPU cost (filesystem/block-level
  merging).
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs import registry as reg
from repro.safs.io_request import IORequest, MergedRequest, MergedSpans, merge_requests
from repro.safs.io_scheduler import IOScheduler
from repro.safs.page import DEFAULT_PAGE_SIZE, SAFSFile
from repro.safs.page_cache import PageCache, PageCacheConfig
from repro.safs.user_task import CompletedTask
from repro.sim.cost_model import DEFAULT_COST_MODEL, CostModel
from repro.sim.faults import FaultPolicy
from repro.sim.health import HealthMonitor, HealthPolicy
from repro.sim.ssd_array import SSDArray, SSDArrayConfig
from repro.sim.stats import StatsCollector


@dataclass(frozen=True)
class SAFSConfig:
    """Filesystem-wide knobs."""

    #: SAFS page size in bytes (Figure 13 sweeps 4KB → 1MB).
    page_size: int = DEFAULT_PAGE_SIZE
    #: Page cache capacity in bytes (Figure 14 sweeps 1GB → 32GB).
    cache_bytes: int = 1 << 30
    #: Pages per cache slot.
    cache_associativity: int = 8
    #: Per-slot eviction policy ("lru" or "gclock", cf. [31]).
    cache_eviction: str = "lru"
    #: Queue window for filesystem-level merging (requests the FS can see
    #: at once; FlashGraph's engine has a global view instead).
    fs_merge_window: int = 64


class SAFS:
    """Set-associative file system over a simulated SSD array."""

    def __init__(
        self,
        array: Optional[SSDArray] = None,
        config: Optional[SAFSConfig] = None,
        cost_model: Optional[CostModel] = None,
        stats: Optional[StatsCollector] = None,
        fault_policy: Optional[FaultPolicy] = None,
        health_policy: Optional[HealthPolicy] = None,
    ) -> None:
        """``fault_policy`` governs retries, timeouts and degraded-mode
        rerouting when ``array`` carries a fault plan; the default policy
        is inert on a fault-free array.  ``health_policy`` attaches a
        device health monitor (see :mod:`repro.sim.health`) that
        quarantines flapping devices and declares repeat offenders
        failed; without one, no device is ever benched."""
        self.config = config or SAFSConfig()
        self.stats = stats if stats is not None else StatsCollector()
        #: Armed observer (see :mod:`repro.obs`); ``None`` = no tracing.
        self.obs = None
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        self.array = array or SSDArray(SSDArrayConfig(), self.stats)
        self.health: Optional[HealthMonitor] = None
        if health_policy is not None:
            self.health = HealthMonitor(health_policy, self.array.config.num_ssds)
            self.array.health = self.health
        self.cache = PageCache(
            PageCacheConfig(
                capacity_bytes=self.config.cache_bytes,
                page_size=self.config.page_size,
                associativity=self.config.cache_associativity,
                eviction=self.config.cache_eviction,
            ),
            self.stats,
        )
        self.scheduler = IOScheduler(
            self.array,
            self.cache,
            self.cost_model,
            self.config.page_size,
            self.stats,
            fault_policy=fault_policy,
        )
        self._files: Dict[str, SAFSFile] = {}
        self._file_formats: Dict[str, str] = {}

    @property
    def fault_policy(self) -> FaultPolicy:
        """The recovery policy the scheduler applies to device faults."""
        return self.scheduler.fault_policy

    @property
    def page_size(self) -> int:
        return self.config.page_size

    def create_file(
        self,
        name: str,
        data: Union[bytes, bytearray, memoryview],
        fmt: str = "v1",
    ) -> SAFSFile:
        """Store ``data`` as a new file striped across the array.

        ``fmt`` records the file's logical layout ("v1" fixed-width edge
        lists or other raw data, "v2" delta+varint compressed edge lists)
        so readers can check they parse what was written — SAFS itself is
        format-agnostic and serves byte ranges either way.
        """
        if name in self._files:
            raise ValueError(f"file {name!r} already exists")
        file = SAFSFile(name, data)
        self.scheduler.register_file(file)
        self._files[name] = file
        self._file_formats[name] = fmt
        return file

    def open_file(self, name: str) -> SAFSFile:
        """Look up an existing file by name."""
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFoundError(f"SAFS has no file named {name!r}") from None

    def file_format(self, name: str) -> str:
        """The layout tag ``create_file`` recorded for ``name``."""
        if name not in self._files:
            raise FileNotFoundError(f"SAFS has no file named {name!r}")
        return self._file_formats.get(name, "v1")

    def file_names(self) -> List[str]:
        """All file names, in creation order."""
        return list(self._files)

    def submit_merged(
        self, merged: Sequence[MergedRequest], issue_time: float
    ) -> Tuple[List[CompletedTask], float]:
        """Issue pre-merged requests (engine-level merging).

        Requests are issued back-to-back: each one's device arrival time
        includes the CPU spent issuing its predecessors, modelling a worker
        thread pushing its batch into SAFS.  Returns the completions of
        every constituent :class:`IORequest` sorted by completion time,
        plus the total CPU cost of the batch.
        """
        cursor = issue_time
        total_cpu = 0.0
        obs = self.obs
        completions: List[CompletedTask] = []
        for request in merged:
            if obs is not None:
                io_id = obs.begin_io(
                    request.file.file_id, request.first_page,
                    request.last_page, len(request.parts), cursor,
                )
            issued_at = cursor
            done, cpu, full_hit = self.scheduler.dispatch(request, cursor)
            cursor += cpu
            total_cpu += cpu
            if done < cursor:
                done = cursor
            if obs is not None:
                obs.end_io(done)
            for part in request.parts:
                data = part.file.read(part.offset, part.length)
                completions.append(CompletedTask(part, data, done, cache_hit=full_hit))
                if obs is not None:
                    obs.request_event(part.task.context, issued_at, done, io_id)
        completions.sort(key=lambda c: c.completion_time)
        self.stats.add(reg.IO_REQUESTS_ISSUED, len(merged))
        self.stats.add(reg.IO_CPU_ISSUE_TIME, total_cpu)
        return completions, total_cpu

    def submit_spans(
        self,
        spans: MergedSpans,
        files: Dict[int, "SAFSFile"],
        issue_time: float,
    ) -> Tuple[np.ndarray, float]:
        """Array twin of :meth:`submit_merged` (engine fast path).

        Issues the merged spans back-to-back exactly as
        :meth:`submit_merged` would issue the equivalent
        :class:`MergedRequest` list — same cursor arithmetic, same device
        submissions, same counters — but returns one completion time per
        *span* and leaves fan-out to constituent requests to the caller,
        which holds the wave as arrays and never built request objects.
        """
        cursor = issue_time
        total_cpu = 0.0
        obs = self.obs
        part_counts = None
        if obs is not None:
            part_counts = np.bincount(
                spans.span_of_part, minlength=spans.num_spans
            ).tolist()
            obs.last_io_ids = []
        completions = np.empty(spans.num_spans)
        dispatch_span = self.scheduler.dispatch_span
        for i, (fid, first, last) in enumerate(
            zip(spans.file_ids.tolist(), spans.first_pages.tolist(), spans.last_pages.tolist())
        ):
            if obs is not None:
                obs.last_io_ids.append(
                    obs.begin_io(fid, first, last, part_counts[i], cursor)
                )
            done, cpu, _ = dispatch_span(files[fid], first, last, cursor)
            cursor += cpu
            total_cpu += cpu
            if done < cursor:
                done = cursor
            if obs is not None:
                obs.end_io(done)
            completions[i] = done
        self.stats.add(reg.IO_REQUESTS_ISSUED, spans.num_spans)
        self.stats.add(reg.IO_CPU_ISSUE_TIME, total_cpu)
        return completions, total_cpu

    def submit(
        self,
        requests: Sequence[IORequest],
        issue_time: float,
        fs_merge: bool = True,
    ) -> Tuple[List[CompletedTask], float]:
        """Issue raw, unmerged requests (the Figure 12 counterfactual).

        Each incoming request costs kernel-path CPU; with ``fs_merge`` the
        filesystem merges adjacent requests, but only within its bounded
        queue window, lacking the engine's global view.  Without it every
        request hits the device individually.
        """
        if not requests:
            return [], 0.0
        cm = self.cost_model
        extra_cpu = len(requests) * (
            cm.cpu_per_io_request_kernel - cm.cpu_per_io_request
        )
        window = self.config.fs_merge_window if fs_merge else 1
        merged = merge_requests(
            list(requests), self.config.page_size, adjacency_gap=1, window=window
        )
        completions, cpu = self.submit_merged(merged, issue_time + extra_cpu)
        total_cpu = cpu + extra_cpu
        self.stats.add(reg.IO_CPU_ISSUE_TIME, extra_cpu)
        return completions, total_cpu

    def cached_bytes(self) -> int:
        """Bytes currently held by the page cache."""
        return len(self.cache) * self.config.page_size

    def reset_timing(self) -> None:
        """Clear device queues, rebuilds, health history, the cache and
        the shared counters for a fresh timed run.

        Resetting the :class:`StatsCollector` is load-bearing for
        back-to-back jobs in one process: float counters that keep
        accumulating across jobs make ``diff`` from a non-zero base
        round differently than accumulation from zero, so the second
        job's counter stream would drift from a fresh stack's in the
        last few ulps (``tests/core/test_sequential_jobs.py``).
        Histograms and gauges reset with it; snapshot a
        :class:`~repro.obs.spans.Observer` first if you need them.
        """
        self.array.reset()
        if self.health is not None:
            self.health.reset()
        self.cache.clear()
        self.stats.reset()
