"""The set-associative SAFS page cache.

SAFS organises cached pages in a hashtable whose slots each hold several
pages [31].  Hashing a page to one small slot keeps locking local to the
slot and makes the cache cheap when hit rates are low — the property that
lets FlashGraph leave the cache on for every application and "increase
application-perceived performance linearly along with the cache hit rate".

The simulation reproduces the *placement policy* exactly: a page hashes to
one set, eviction is LRU within the set only, so conflict misses of a real
set-associative cache (as opposed to an idealised global LRU) show up in
the measured hit rates.
"""

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.safs.page import DEFAULT_PAGE_SIZE, Page
from repro.sim.stats import StatsCollector

PageKey = Tuple[int, int]


#: Supported per-set eviction policies.  SAFS's parallel page cache [31]
#: uses a gclock variant; LRU is the simpler default here and an ablation
#: bench compares the two.
EVICTION_POLICIES = ("lru", "gclock")


@dataclass(frozen=True)
class PageCacheConfig:
    """Cache geometry.

    ``capacity_bytes`` is the headline knob the paper sweeps (Figure 14:
    1GB → 32GB).  ``associativity`` is the number of pages per hashtable
    slot; SAFS uses a small constant (8 here).
    """

    capacity_bytes: int = 1 << 30
    page_size: int = DEFAULT_PAGE_SIZE
    associativity: int = 8
    eviction: str = "lru"

    @property
    def capacity_pages(self) -> int:
        """Total pages the cache may hold."""
        return max(1, self.capacity_bytes // self.page_size)

    @property
    def num_sets(self) -> int:
        """Number of hashtable slots."""
        return max(1, self.capacity_pages // self.associativity)

    @property
    def set_capacity(self) -> int:
        """Pages per slot (the whole capacity for tiny caches)."""
        return min(self.associativity, self.capacity_pages)


class PageCache:
    """A set-associative page cache with per-set LRU eviction."""

    def __init__(
        self,
        config: Optional[PageCacheConfig] = None,
        stats: Optional[StatsCollector] = None,
    ) -> None:
        self.config = config or PageCacheConfig()
        if self.config.page_size <= 0:
            raise ValueError("page size must be positive")
        if self.config.associativity <= 0:
            raise ValueError("associativity must be positive")
        if self.config.eviction not in EVICTION_POLICIES:
            raise ValueError(
                f"unknown eviction policy {self.config.eviction!r}; "
                f"pick from {EVICTION_POLICIES}"
            )
        self.stats = stats if stats is not None else StatsCollector()
        self._sets: Dict[int, "OrderedDict[PageKey, Page]"] = {}
        # gclock state: per-set reference bits and clock hand position.
        self._ref_bits: Dict[int, Dict[PageKey, bool]] = {}
        self._hands: Dict[int, int] = {}

    def _set_index(self, key: PageKey) -> int:
        # A multiplicative hash keeps adjacent pages in different sets so a
        # sequential scan does not thrash a single slot.
        file_id, page_no = key
        h = (page_no * 2654435761 + file_id * 40503) & 0xFFFFFFFF
        return h % self.config.num_sets

    def lookup(self, file_id: int, page_no: int) -> Optional[Page]:
        """Return the cached page and refresh its recency, or ``None``.

        Counts one hit or one miss in the shared stats either way.
        """
        key = (file_id, page_no)
        index = self._set_index(key)
        cache_set = self._sets.get(index)
        if cache_set is not None and key in cache_set:
            if self.config.eviction == "lru":
                cache_set.move_to_end(key)
            else:
                self._ref_bits[index][key] = True
            self.stats.add("cache.hits")
            return cache_set[key]
        self.stats.add("cache.misses")
        return None

    def contains(self, file_id: int, page_no: int) -> bool:
        """Whether the page is cached, without touching recency or stats."""
        key = (file_id, page_no)
        cache_set = self._sets.get(self._set_index(key))
        return cache_set is not None and key in cache_set

    def insert(self, page: Page) -> Optional[PageKey]:
        """Cache ``page``, evicting the set-LRU page when the set is full.

        Returns the evicted page key, or ``None``.  Re-inserting a cached
        page just refreshes its recency.
        """
        key = page.key
        index = self._set_index(key)
        cache_set = self._sets.get(index)
        if cache_set is None:
            cache_set = OrderedDict()
            self._sets[index] = cache_set
            if self.config.eviction == "gclock":
                self._ref_bits[index] = {}
                self._hands[index] = 0
        if key in cache_set:
            if self.config.eviction == "lru":
                cache_set.move_to_end(key)
            else:
                self._ref_bits[index][key] = True
            cache_set[key] = page
            return None
        evicted: Optional[PageKey] = None
        if len(cache_set) >= self.config.set_capacity:
            if self.config.eviction == "lru":
                evicted, _ = cache_set.popitem(last=False)
            else:
                evicted = self._gclock_evict(index, cache_set)
            self.stats.add("cache.evictions")
        cache_set[key] = page
        if self.config.eviction == "gclock":
            # New pages start unreferenced; a hit sets the bit, so pages
            # touched since the last sweep outlive ones merely loaded.
            self._ref_bits[index][key] = False
        self.stats.add("cache.insertions")
        return evicted

    def _gclock_evict(self, index: int, cache_set) -> PageKey:
        """Sweep the set's clock hand, clearing reference bits, until an
        unreferenced page is found (guaranteed within two sweeps)."""
        ref_bits = self._ref_bits[index]
        keys = list(cache_set.keys())
        hand = self._hands[index] % len(keys)
        for _ in range(2 * len(keys) + 1):
            key = keys[hand]
            if ref_bits.get(key, False):
                ref_bits[key] = False
                hand = (hand + 1) % len(keys)
            else:
                self._hands[index] = hand  # next sweep resumes here
                del cache_set[key]
                ref_bits.pop(key, None)
                return key
        raise RuntimeError("gclock failed to find a victim")  # pragma: no cover

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets.values())

    def hit_rate(self) -> float:
        """Hits over lookups so far, 0.0 before any lookup."""
        hits = self.stats.get("cache.hits")
        total = hits + self.stats.get("cache.misses")
        if total == 0:
            return 0.0
        return hits / total

    def clear(self) -> None:
        """Drop every cached page (stats are left alone)."""
        self._sets.clear()
        self._ref_bits.clear()
        self._hands.clear()

    def __repr__(self) -> str:
        cfg = self.config
        return (
            f"PageCache(pages={len(self)}/{cfg.capacity_pages}, "
            f"sets={cfg.num_sets}x{cfg.set_capacity})"
        )
