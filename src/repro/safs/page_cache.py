"""The set-associative SAFS page cache.

SAFS organises cached pages in a hashtable whose slots each hold several
pages [31].  Hashing a page to one small slot keeps locking local to the
slot and makes the cache cheap when hit rates are low — the property that
lets FlashGraph leave the cache on for every application and "increase
application-perceived performance linearly along with the cache hit rate".

The simulation reproduces the *placement policy* exactly: a page hashes to
one set, eviction is LRU within the set only, so conflict misses of a real
set-associative cache (as opposed to an idealised global LRU) show up in
the measured hit rates.

Two bulk entry points, :meth:`PageCache.lookup_range` and
:meth:`PageCache.insert_range`, serve a whole merged span in one call.
They are wall-clock fast paths only: hit/miss/eviction counters and the
per-set recency state evolve exactly as the per-page :meth:`lookup` /
:meth:`insert` calls would (the property tests assert this).
"""

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.obs import registry as reg
from repro.safs.page import DEFAULT_PAGE_SIZE, Page
from repro.sim.stats import StatsCollector

PageKey = Tuple[int, int]


#: Supported per-set eviction policies.  SAFS's parallel page cache [31]
#: uses a gclock variant; LRU is the simpler default here and an ablation
#: bench compares the two.
EVICTION_POLICIES = ("lru", "gclock")


@dataclass(frozen=True)
class PageCacheConfig:
    """Cache geometry.

    ``capacity_bytes`` is the headline knob the paper sweeps (Figure 14:
    1GB → 32GB).  ``associativity`` is the number of pages per hashtable
    slot; SAFS uses a small constant (8 here).
    """

    capacity_bytes: int = 1 << 30
    page_size: int = DEFAULT_PAGE_SIZE
    associativity: int = 8
    eviction: str = "lru"

    @property
    def capacity_pages(self) -> int:
        """Total pages the cache may hold."""
        return max(1, self.capacity_bytes // self.page_size)

    @property
    def num_sets(self) -> int:
        """Number of hashtable slots."""
        return max(1, self.capacity_pages // self.associativity)

    @property
    def set_capacity(self) -> int:
        """Pages per slot (the whole capacity for tiny caches)."""
        return min(self.associativity, self.capacity_pages)


class PageCache:
    """A set-associative page cache with per-set LRU eviction."""

    def __init__(
        self,
        config: Optional[PageCacheConfig] = None,
        stats: Optional[StatsCollector] = None,
    ) -> None:
        self.config = config or PageCacheConfig()
        if self.config.page_size <= 0:
            raise ValueError("page size must be positive")
        if self.config.associativity <= 0:
            raise ValueError("associativity must be positive")
        if self.config.eviction not in EVICTION_POLICIES:
            raise ValueError(
                f"unknown eviction policy {self.config.eviction!r}; "
                f"pick from {EVICTION_POLICIES}"
            )
        self.stats = stats if stats is not None else StatsCollector()
        # Per-instance lookup/hit tallies.  The shared stats counters
        # aggregate across every cache on the collector (the flat cache
        # plus all tenant partitions), so ``hit_rate`` must not read
        # them: these plain ints keep the rate partition-local without
        # touching the bit-identical counter stream.
        self.lookups = 0
        self.hits = 0
        # Per-set capacity is instance state (not config) so the serve
        # layer's rebalancer can move capacity between partitions; it
        # starts at the configured geometry.
        self._set_cap = self.config.set_capacity
        # Ghost LRU (opt-in via enable_ghost_tracking): recently evicted
        # keys, recency-ordered.  A miss that hits the ghost list would
        # have been a hit with more capacity — the marginal-benefit
        # signal the rebalancer sizes partitions by.
        self._ghost: Optional["OrderedDict[PageKey, None]"] = None
        self._ghost_cap = 0
        self.ghost_hits = 0
        self._sets: Dict[int, "OrderedDict[PageKey, Page]"] = {}
        # All resident keys, mirrored across sets: bulk lookups answer the
        # (dominant) miss case with one set-membership test instead of a
        # hash + per-set dict probe per page.
        self._resident: Set[PageKey] = set()
        # gclock state: per-set reference bits, clock hand position, and the
        # key ring the hand sweeps.  The ring mirrors the set's insertion
        # order incrementally (append on insert, pop on evict) so evictions
        # never rebuild it from the dict.
        self._ref_bits: Dict[int, Dict[PageKey, bool]] = {}
        self._hands: Dict[int, int] = {}
        self._rings: Dict[int, List[PageKey]] = {}
        # Opt-in per-set lookup/hit tallies (``enable_set_tracking``).
        # ``None`` keeps the miss fast path free of set hashing — arming an
        # observer turns them on; a disarmed run never pays for them.
        self._set_lookups: Optional[np.ndarray] = None
        self._set_hits: Optional[np.ndarray] = None

    def enable_set_tracking(self) -> None:
        """Start tallying lookups and hits per cache set.

        Off by default: the miss fast path skips set hashing entirely, so
        the tallies exist only when something (the observer's :func:`arm`)
        asks for them.  Idempotent; tallies are cumulative from the first
        call.
        """
        if self._set_lookups is None:
            self._set_lookups = np.zeros(self.config.num_sets, dtype=np.int64)
            self._set_hits = np.zeros(self.config.num_sets, dtype=np.int64)

    def set_hit_rate_samples(self) -> Dict[int, float]:
        """``{set index: cumulative hit rate}`` for every probed set.

        Empty when tracking is off (:meth:`enable_set_tracking`) or no
        lookup has landed yet; sets never probed are omitted rather than
        reported as 0.0.
        """
        if self._set_lookups is None:
            return {}
        probed = np.flatnonzero(self._set_lookups)
        rates = self._set_hits[probed] / self._set_lookups[probed]
        return {int(i): float(r) for i, r in zip(probed, rates)}

    def enable_ghost_tracking(self, capacity_pages: Optional[int] = None) -> None:
        """Start remembering evicted keys in a ghost LRU list.

        ``capacity_pages`` bounds the list (default: the cache's own
        configured capacity — "would doubling help?").  Idempotent;
        :attr:`ghost_hits` counts misses whose key was on the list, the
        shadow signal the serve-layer rebalancer reads.  Purely local
        state: never touches the shared stats.
        """
        if self._ghost is None:
            self._ghost = OrderedDict()
            self._ghost_cap = max(
                1,
                self.config.capacity_pages
                if capacity_pages is None
                else capacity_pages,
            )

    def _ghost_probe(self, key: PageKey) -> None:
        """Count (and retire) a ghost hit for a missed ``key``."""
        ghost = self._ghost
        if ghost is not None and key in ghost:
            del ghost[key]
            self.ghost_hits += 1

    def _ghost_remember(self, key: PageKey) -> None:
        ghost = self._ghost
        if ghost is None:
            return
        ghost[key] = None
        ghost.move_to_end(key)
        if len(ghost) > self._ghost_cap:
            ghost.popitem(last=False)

    @property
    def set_capacity_pages(self) -> int:
        """Current total capacity: per-set capacity × number of sets
        (diverges from the configured geometry after rebalancing)."""
        return self._set_cap * self.config.num_sets

    def resize_set_capacity(self, set_capacity: int) -> int:
        """Grow or shrink every set to hold ``set_capacity`` pages.

        Shrinking evicts overflow pages per set (via the configured
        policy, remembered in the ghost list when tracking is on)
        without touching the shared stats — capacity reassignment is a
        policy action, not workload traffic.  Returns the number of
        pages evicted (0 on grow).
        """
        if set_capacity < 1:
            raise ValueError("set_capacity must be at least 1")
        evicted_count = 0
        if set_capacity < self._set_cap:
            for index in sorted(self._sets):
                cache_set = self._sets[index]
                while len(cache_set) > set_capacity:
                    if self.config.eviction == "lru":
                        evicted, _ = cache_set.popitem(last=False)
                    else:
                        evicted = self._gclock_evict(index, cache_set)
                    self._resident.discard(evicted)
                    self._ghost_remember(evicted)
                    evicted_count += 1
        self._set_cap = set_capacity
        return evicted_count

    def _set_index(self, key: PageKey) -> int:
        # A multiplicative hash keeps adjacent pages in different sets so a
        # sequential scan does not thrash a single slot.
        file_id, page_no = key
        h = (page_no * 2654435761 + file_id * 40503) & 0xFFFFFFFF
        return h % self.config.num_sets

    def lookup(self, file_id: int, page_no: int) -> Optional[Page]:
        """Return the cached page and refresh its recency, or ``None``.

        Counts one hit or one miss in the shared stats either way.
        """
        key = (file_id, page_no)
        self.lookups += 1
        if key not in self._resident:
            if self._set_lookups is not None:
                self._set_lookups[self._set_index(key)] += 1
            self._ghost_probe(key)
            self.stats.add(reg.CACHE_MISSES)
            return None
        self.hits += 1
        index = self._set_index(key)
        if self._set_lookups is not None:
            self._set_lookups[index] += 1
            self._set_hits[index] += 1
        cache_set = self._sets[index]
        if self.config.eviction == "lru":
            cache_set.move_to_end(key)
        else:
            self._ref_bits[index][key] = True
        self.stats.add(reg.CACHE_HITS)
        return cache_set[key]

    def lookup_range(self, file_id: int, first_page: int, last_page: int) -> np.ndarray:
        """Probe every page of ``[first_page, last_page]`` in one call.

        Returns a boolean hit mask.  Counter deltas and recency updates are
        identical to calling :meth:`lookup` per page in ascending order —
        misses touch nothing but the miss counter, so the whole-span cost
        collapses to one membership test per page plus per-hit upkeep.
        """
        n = last_page - first_page + 1
        hit_mask = np.zeros(n, dtype=bool)
        resident = self._resident
        lru = self.config.eviction == "lru"
        tracking = self._set_lookups is not None
        hits = 0
        for i in range(n):
            key = (file_id, first_page + i)
            if key in resident:
                hit_mask[i] = True
                hits += 1
                index = self._set_index(key)
                if tracking:
                    self._set_lookups[index] += 1
                    self._set_hits[index] += 1
                if lru:
                    self._sets[index].move_to_end(key)
                else:
                    self._ref_bits[index][key] = True
            else:
                if tracking:
                    self._set_lookups[self._set_index(key)] += 1
                if self._ghost is not None:
                    self._ghost_probe(key)
        self.lookups += n
        self.hits += hits
        if hits:
            self.stats.add(reg.CACHE_HITS, hits)
        if n - hits:
            self.stats.add(reg.CACHE_MISSES, n - hits)
        return hit_mask

    def page(self, file_id: int, page_no: int) -> Page:
        """The cached page, without stats or recency effects (fast paths
        that already counted the span via :meth:`lookup_range`)."""
        key = (file_id, page_no)
        return self._sets[self._set_index(key)][key]

    def contains(self, file_id: int, page_no: int) -> bool:
        """Whether the page is cached, without touching recency or stats."""
        return (file_id, page_no) in self._resident

    def insert(self, page: Page) -> Optional[PageKey]:
        """Cache ``page``, evicting the set-LRU page when the set is full.

        Returns the evicted page key, or ``None``.  Re-inserting a cached
        page just refreshes its recency.
        """
        evicted, _ = self._insert_one(page)
        return evicted

    def insert_range(self, pages: Iterable[Page]) -> int:
        """Insert ``pages`` in order; returns the number of evictions.

        Per-page semantics are exactly :meth:`insert`'s (including pages of
        one batch evicting each other); only the stats updates are batched.
        """
        evictions = 0
        insertions = 0
        for page in pages:
            evicted, inserted = self._insert_one(page, count_stats=False)
            if evicted is not None:
                evictions += 1
            if inserted:
                insertions += 1
        if evictions:
            self.stats.add(reg.CACHE_EVICTIONS, evictions)
        if insertions:
            self.stats.add(reg.CACHE_INSERTIONS, insertions)
        return evictions

    def _insert_one(
        self, page: Page, count_stats: bool = True
    ) -> Tuple[Optional[PageKey], bool]:
        """Shared insert path; returns ``(evicted_key, newly_inserted)``."""
        key = page.key
        index = self._set_index(key)
        cache_set = self._sets.get(index)
        if cache_set is None:
            cache_set = OrderedDict()
            self._sets[index] = cache_set
            if self.config.eviction == "gclock":
                self._ref_bits[index] = {}
                self._hands[index] = 0
                self._rings[index] = []
        if key in cache_set:
            if self.config.eviction == "lru":
                cache_set.move_to_end(key)
            else:
                self._ref_bits[index][key] = True
            cache_set[key] = page
            return None, False
        evicted: Optional[PageKey] = None
        if len(cache_set) >= self._set_cap:
            if self.config.eviction == "lru":
                evicted, _ = cache_set.popitem(last=False)
            else:
                evicted = self._gclock_evict(index, cache_set)
            self._resident.discard(evicted)
            self._ghost_remember(evicted)
            if count_stats:
                self.stats.add(reg.CACHE_EVICTIONS)
        cache_set[key] = page
        self._resident.add(key)
        if self.config.eviction == "gclock":
            # New pages start unreferenced; a hit sets the bit, so pages
            # touched since the last sweep outlive ones merely loaded.
            self._ref_bits[index][key] = False
            self._rings[index].append(key)
        if count_stats:
            self.stats.add(reg.CACHE_INSERTIONS)
        return evicted, True

    def _gclock_evict(self, index: int, cache_set) -> PageKey:
        """Sweep the set's clock hand, clearing reference bits, until an
        unreferenced page is found (guaranteed within two sweeps)."""
        ref_bits = self._ref_bits[index]
        ring = self._rings[index]
        hand = self._hands[index] % len(ring)
        for _ in range(2 * len(ring) + 1):
            key = ring[hand]
            if ref_bits.get(key, False):
                ref_bits[key] = False
                hand = (hand + 1) % len(ring)
            else:
                # Removing the victim shifts its successors left one slot,
                # so the unchanged hand already points at the next page —
                # the same resume position the full rebuild used to land on.
                self._hands[index] = hand
                ring.pop(hand)
                del cache_set[key]
                ref_bits.pop(key, None)
                return key
        raise RuntimeError("gclock failed to find a victim")  # pragma: no cover

    def invalidate(self, file_id: int, page_no: int) -> bool:
        """Drop one page from the cache, if present.

        Used by the fault machinery: an aborted dispatch rolls back the
        pages it installed so a degraded re-run observes a consistent
        cache.  Returns whether the page was resident; counts one
        ``cache.invalidations`` when it was.
        """
        key = (file_id, page_no)
        if key not in self._resident:
            return False
        index = self._set_index(key)
        del self._sets[index][key]
        self._resident.discard(key)
        if self.config.eviction == "gclock":
            ring = self._rings[index]
            pos = ring.index(key)
            ring.pop(pos)
            hand = self._hands[index]
            # Keep the hand on the same page it pointed at: entries after
            # ``pos`` shifted left one slot; a hand past the end wraps.
            if pos < hand:
                hand -= 1
            if ring and hand >= len(ring):
                hand %= len(ring)
            self._hands[index] = 0 if not ring else hand
            self._ref_bits[index].pop(key, None)
        self.stats.add(reg.CACHE_INVALIDATIONS)
        return True

    def __len__(self) -> int:
        return len(self._resident)

    def hit_rate(self) -> float:
        """*This* cache's hits over lookups so far, 0.0 before any
        lookup.  Tallied per instance, not from the shared stats — under
        tenant partitions several caches share one collector, and the
        aggregate counters would misreport every partition's rate."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def export_state(self) -> Dict:
        """Placement and recency state for checkpointing.

        Captures, per set, the resident keys in recency order (the
        OrderedDict order LRU evicts from) and — under gclock — the key
        ring, hand position and reference bits.  Page *content* is not
        stored: cached pages are zero-copy views of immutable file
        images, so restore re-materialises them from the files.
        """
        state: Dict = {
            "keys": {
                index: list(cache_set.keys())
                for index, cache_set in self._sets.items()
                if cache_set
            }
        }
        if self.config.eviction == "gclock":
            state["rings"] = {i: list(ring) for i, ring in self._rings.items()}
            state["hands"] = dict(self._hands)
            state["ref_bits"] = {
                i: dict(bits) for i, bits in self._ref_bits.items()
            }
        return state

    def restore_state(self, state: Dict, page_provider) -> None:
        """Reinstate :meth:`export_state` output.

        ``page_provider(file_id, page_no)`` returns the page's bytes
        (typically ``SAFSFile.read_page``).  No stats are touched — the
        checkpoint restores the counter stream separately.
        """
        self.clear()
        gclock = self.config.eviction == "gclock"
        for index, keys in state["keys"].items():
            index = int(index)
            cache_set: "OrderedDict[PageKey, Page]" = OrderedDict()
            for raw_key in keys:
                key = (int(raw_key[0]), int(raw_key[1]))
                if self._set_index(key) != index:
                    raise ValueError(
                        f"checkpointed page {key} does not hash to set {index}"
                    )
                cache_set[key] = Page(key[0], key[1], page_provider(*key))
                self._resident.add(key)
            self._sets[index] = cache_set
            if gclock:
                self._ref_bits[index] = {}
                self._hands[index] = 0
                self._rings[index] = []
        if gclock and "rings" in state:
            for index, ring in state["rings"].items():
                self._rings[int(index)] = [
                    (int(k[0]), int(k[1])) for k in ring
                ]
            for index, hand in state["hands"].items():
                self._hands[int(index)] = int(hand)
            for index, bits in state["ref_bits"].items():
                self._ref_bits[int(index)] = {
                    (int(k[0]), int(k[1])): bool(v) for k, v in bits.items()
                }

    def clear(self) -> None:
        """Drop every cached page (stats are left alone)."""
        self._sets.clear()
        self._resident.clear()
        self._ref_bits.clear()
        self._hands.clear()
        self._rings.clear()

    def __repr__(self) -> str:
        cfg = self.config
        return (
            f"PageCache(pages={len(self)}/{cfg.capacity_pages}, "
            f"sets={cfg.num_sets}x{self._set_cap})"
        )
