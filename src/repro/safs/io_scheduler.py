"""Dispatch of merged requests to the SSD array through the page cache.

This is the heart of SAFS's data path: for every merged request it checks
the page cache page-by-page, fetches only the missing runs from the striped
device queues, installs the fetched pages, and reports the virtual time at
which the whole request's data is available in the cache.

The scheduler never copies data — completions carry zero-copy views of the
file image, mirroring the user-task interface running computation directly
against cached pages.
"""

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs import registry as reg
from repro.safs.integrity import IntegrityMap
from repro.safs.io_request import MergedRequest
from repro.safs.page import Page, SAFSFile, flash_pages_per_safs_page
from repro.safs.page_cache import PageCache
from repro.sim.cost_model import CostModel
from repro.sim.faults import DEFAULT_FAULT_POLICY, FaultPolicy, UnrecoverableIOError
from repro.sim.ssd_array import SSDArray
from repro.sim.stats import StatsCollector


class InflightReadRegistry:
    """Cross-query in-flight read deduplication (docs/io_sharing.md).

    Records every device fetch the scheduler issues as ``(file_id,
    flash_first, flash_count) -> completion_time``.  When a later
    dispatch — typically another tenant's job, whose cache partition
    missed on pages a concurrent job is already fetching — requests the
    same extent while the original fetch is still outstanding on the
    simulated clock, :meth:`attach` returns the leader's completion
    time: the follower waits out the residual (``max(arrival, original
    completion)``) instead of re-issuing the device request.

    Failure semantics: only *successful* fetches are recorded.  A leader
    whose fetch raises :class:`UnrecoverableIOError` never registers the
    extent, so the next requester re-issues the read and drives the full
    retry/reroute path itself — waiters are woken into the retry path,
    never left hanging on a fetch that will not land.  (Recoverable
    faults are invisible here: retries, timeouts and rerouting are
    folded into the leader's completion time, which is exactly what the
    waiter is charged.)

    Purely simulated-clock state: the registry never touches the stats
    collector, so an attached-but-unused registry leaves every counter
    stream bit-identical.
    """

    def __init__(self) -> None:
        #: (file_id, flash_first, flash_count) -> completion time of the
        #: fetch currently in flight for that extent.
        self._inflight: Dict[Tuple[int, int, int], float] = {}
        #: Cumulative attach events (one per deduplicated miss run).
        self.attached = 0

    def __len__(self) -> int:
        return len(self._inflight)

    def attach(
        self, file_id: int, flash_first: int, flash_count: int, issue_time: float
    ) -> Optional[float]:
        """Join the in-flight fetch of this exact extent, if any.

        Returns the leader's completion time when the extent is still
        outstanding at ``issue_time`` (the caller completes at
        ``max(issue_time, completion)``), else ``None``.  An entry whose
        fetch already landed is expired on probe: the data went into the
        *leader's* cache, so a later requester must consult its own
        cache and, on a miss, issue its own read.
        """
        key = (file_id, flash_first, flash_count)
        completion = self._inflight.get(key)
        if completion is None:
            return None
        if issue_time >= completion:
            del self._inflight[key]
            return None
        self.attached += 1
        return completion

    def record(
        self,
        file_id: int,
        flash_first: int,
        flash_count: int,
        completion: float,
    ) -> None:
        """Register a successfully issued fetch (callers must *not*
        record fetches that raised — see the class docstring)."""
        self._inflight[(file_id, flash_first, flash_count)] = completion


class IOScheduler:
    """Routes page reads to per-device queues and maintains the cache.

    When the array carries a :class:`~repro.sim.faults.FaultPlan`, every
    fetch — scalar :meth:`dispatch` and vectorized :meth:`dispatch_span`
    alike — runs through the same recovery machinery: per-run retries
    with exponential backoff in simulated time, per-attempt timeouts,
    and degraded-mode rerouting around dead devices, all governed by the
    :class:`~repro.sim.faults.FaultPolicy`.
    """

    def __init__(
        self,
        array: SSDArray,
        cache: PageCache,
        cost_model: CostModel,
        page_size: int,
        stats: Optional[StatsCollector] = None,
        fault_policy: Optional[FaultPolicy] = None,
    ) -> None:
        if page_size <= 0:
            raise ValueError("page size must be positive")
        self.array = array
        self.cache = cache
        self.cost_model = cost_model
        self.page_size = page_size
        self.fault_policy = fault_policy or DEFAULT_FAULT_POLICY
        self.stats = stats if stats is not None else StatsCollector()
        #: Armed observer (see :mod:`repro.obs`); ``None`` = no tracing.
        self.obs = None
        #: Tenant whose job is currently dispatching (set by the serve
        #: layer around each job step); ``None`` = untagged batch work.
        self.tenant: Optional[str] = None
        #: Optional per-tenant cache partitions (tenant name →
        #: :class:`PageCache`).  When the current tenant has one, its
        #: dispatches run against that partition instead of the shared
        #: cache; everyone else keeps the shared cache, so batch runs
        #: are untouched.
        self.tenant_caches: Optional[dict] = None
        #: In-flight read dedup registry (cross-query I/O sharing); the
        #: serve layer points this at a shared registry around each
        #: sharing tenant's job step.  ``None`` = no dedup, the exact
        #: legacy fetch path.
        self.inflight: Optional[InflightReadRegistry] = None
        self._flash_per_page = flash_pages_per_safs_page(page_size)
        # Per-page checksums, engaged only when the stack can need them
        # (a fault plan injecting rot, or parity reconstruction): a bare
        # fault-free array skips checksumming entirely, keeping the
        # legacy hot path and counter stream untouched.
        self.integrity: Optional[IntegrityMap] = None
        if array.fault_plan is not None or array.parity is not None:
            self.integrity = IntegrityMap(page_size)
        # Flash-page base of each file on the array, assigned at creation.
        self._file_bases: dict = {}
        self._next_base = 0
        # _issue_cost_cum[n]: CPU cost of issuing a request plus n cache
        # lookups, accumulated one float add at a time so the bulk path
        # reproduces the per-page loop's rounding bit for bit.
        self._issue_cost_cum: List[float] = [self.cost_model.cpu_per_io_request]

    def _issue_cost(self, num_pages: int) -> float:
        cum = self._issue_cost_cum
        per_lookup = self.cost_model.cpu_per_cache_lookup
        while len(cum) <= num_pages:
            cum.append(cum[-1] + per_lookup)
        return cum[num_pages]

    def register_file(self, file: SAFSFile) -> None:
        """Lay the file out on the array after every existing file."""
        if file.file_id in self._file_bases:
            raise ValueError(f"file {file.name!r} is already registered")
        self._file_bases[file.file_id] = self._next_base
        safs_pages = file.num_pages(self.page_size)
        flash_pages = safs_pages * self._flash_per_page
        self._next_base += flash_pages
        self.array.note_capacity(flash_pages)
        if self.integrity is not None:
            self.integrity.register(file.file_id, file.read(0, file.size))

    def is_registered(self, file: SAFSFile) -> bool:
        """Whether the file has been laid out on the array."""
        return file.file_id in self._file_bases

    def _flash_extent(self, file: SAFSFile, first_page: int, num_pages: int) -> Tuple[int, int]:
        base = self._file_bases[file.file_id]
        return (
            base + first_page * self._flash_per_page,
            num_pages * self._flash_per_page,
        )

    # ------------------------------------------------------------------
    # Fault-recovering fetch path
    # ------------------------------------------------------------------

    def _fetch_extent(self, issue_time: float, flash_first: int, flash_count: int) -> float:
        """Read one flash extent, recovering from device faults.

        On a fault-free array this is exactly ``array.submit`` — same
        arithmetic, same counters.  With a fault plan attached, each
        per-device run is driven individually through :meth:`_fetch_run`
        so a failed run retries alone: the runs that already succeeded
        are never resubmitted, which is what keeps retried requests from
        double-charging device busy time.
        """
        array = self.array
        if array.fault_plan is None:
            return array.submit(issue_time, flash_first, flash_count)
        completion = issue_time
        for device, run_first, run_pages in array.split_extent_runs(
            flash_first, flash_count
        ):
            done = self._fetch_run(device, run_first, run_pages, issue_time)
            if done > completion:
                completion = done
        array.count_extent(flash_count)
        return completion

    def _record_device_error(self, device: int, time: float) -> None:
        """Feed one device error to the health monitor, acting on trips.

        A quarantine trip just benches the device (subsequent attempts
        route around it); a failure declaration additionally starts the
        parity rebuild onto a hot spare, exactly as a fault-plan death
        would.
        """
        health = self.array.health
        if health is None:
            return
        change = health.record_error(device, time)
        if change == "quarantined":
            self.stats.add(reg.HEALTH_QUARANTINES)
        elif change == "failed":
            self.stats.add(reg.HEALTH_DECLARED_FAILED)
            self.array.start_rebuild(device, time)

    def _fetch_run(
        self, device: int, run_first: int, run_pages: int, issue_time: float
    ) -> float:
        """One per-device run with retries, reconstruction and rerouting.

        All waiting is charged in simulated time: a retry resubmits at
        the failure-detection time plus exponential backoff, a timed-out
        attempt is declared lost at ``submit + timeout``.  A *lost* run —
        dead device, quarantined device, or a silent-corruption checksum
        mismatch — recovers through parity reconstruction when the array
        has a parity layout, else by rerouting to the surviving replica
        device (dead/quarantined only; rot is persistent, so without
        parity a rotted run burns its retries and aborts).  Raises
        :class:`UnrecoverableIOError` once the retry budget is spent.
        """
        array = self.array
        policy = self.fault_policy
        stats = self.stats
        obs = self.obs
        health = array.health
        submit_at = issue_time
        current = device
        retries = 0
        while True:
            target = array.serving_device(current, run_first, submit_at)
            if health is not None and health.avoid(target, submit_at):
                # The health monitor is routing around the device: the
                # attempt is refused at zero service cost.
                stats.add(reg.FAULTS_QUARANTINED_REQUESTS)
                detection = submit_at
                reason = "quarantined"
                if obs is not None:
                    obs.io_event("quarantined", detection, device=target)
            else:
                outcome = array.submit_run(target, submit_at, run_pages)
                if outcome.ok:
                    if outcome.time - submit_at > policy.request_timeout:
                        # The device finished the read, but past the
                        # deadline: the data is declared lost at the
                        # timeout and refetched.
                        stats.add(reg.FAULTS_TIMEOUTS)
                        detection = submit_at + policy.request_timeout
                        reason = "timeout"
                        if obs is not None:
                            obs.io_event("timeout", detection, device=target)
                    else:
                        rotted = (
                            array.device(target).media_rotted(
                                run_first, run_pages, outcome.time
                            )
                            if target == current
                            else 0
                        )
                        if not rotted:
                            if obs is not None:
                                obs.run_done(retries)
                            return outcome.time
                        # The device said the data was good; the per-page
                        # checksums say otherwise.  Service was consumed.
                        stats.add(reg.INTEGRITY_CHECKSUM_FAILURES, rotted)
                        detection = outcome.time
                        reason = "corrupt"
                        if obs is not None:
                            obs.io_event(
                                "corrupt", detection, device=target, pages=rotted
                            )
                        self._record_device_error(target, detection)
                elif outcome.error == "dead":
                    detection = outcome.time
                    reason = "dead"
                    if obs is not None:
                        obs.io_event("dead", detection, device=target)
                else:
                    detection = outcome.time
                    reason = outcome.error
                    if obs is not None:
                        obs.io_event(reason, detection, device=target)
                    self._record_device_error(target, detection)

            if reason in ("dead", "corrupt", "quarantined"):
                if array.layout is not None:
                    # Parity path: reconstruct the lost run from the
                    # row's survivors.  A whole-device loss also starts
                    # the background rebuild onto a hot spare.
                    if reason == "dead":
                        array.start_rebuild(current, detection)
                    recovered = array.reconstruct_run(
                        current, run_first, run_pages, detection
                    )
                    if recovered.ok:
                        if obs is not None:
                            obs.run_done(retries)
                        return recovered.time
                    if recovered.error == "double_fault" and reason != "quarantined":
                        # Two *permanent* losses in one parity row: the
                        # data is gone and no amount of retrying changes
                        # that.  (A quarantined primary still holds its
                        # bits — that case waits out the bench below.)
                        raise UnrecoverableIOError(
                            current, recovered.time, "double_fault"
                        )
                    # A peer failed transiently (or is briefly benched):
                    # the whole reconstruction retries with backoff.
                    detection = recovered.time
                elif reason != "corrupt" and policy.reroute_on_dead:
                    target = array.reroute_target(current, detection)
                    if target is not None:
                        # Degraded mode: the replica read is the recovery,
                        # not a retry, so it spends no retry budget.
                        stats.add(reg.FAULTS_REROUTED_REQUESTS)
                        stats.add(reg.FAULTS_REROUTED_PAGES, run_pages)
                        if obs is not None:
                            obs.io_event(
                                "rerouted", detection,
                                device=current, target=target,
                            )
                        current = target
                        submit_at = detection
                        continue
            retries += 1
            if retries > policy.max_retries:
                raise UnrecoverableIOError(current, detection, reason)
            stats.add(reg.FAULTS_RETRIES)
            submit_at = detection + policy.backoff(retries)
            if reason == "quarantined" and health is not None:
                # Burning the whole retry budget inside the bench window
                # would turn a temporary quarantine into a permanent
                # failure: wait (in simulated time) for the release.
                submit_at = max(submit_at, health.quarantine_release(current))
            if obs is not None:
                obs.io_event(
                    "retried", submit_at, device=current, attempt=retries
                )
                obs.recovery_wait(submit_at - detection)

    def _fetch_or_attach(
        self,
        file_id: int,
        issue_time: float,
        flash_first: int,
        flash_count: int,
        pages: int,
    ) -> Tuple[float, bool]:
        """One miss run: attach to an in-flight fetch of the same extent
        or issue the device read, returning ``(completion, deduped)``.

        Attached runs complete at ``max(issue_time, leader completion)``
        and are counted under ``safs.dedup_*``; issued runs are recorded
        in the registry so later overlapping dispatches can attach.  A
        fetch that raises is never recorded (the registry's failure
        contract).
        """
        inflight = self.inflight
        if inflight is not None:
            leader_done = inflight.attach(
                file_id, flash_first, flash_count, issue_time
            )
            if leader_done is not None:
                self.stats.add(reg.SAFS_DEDUP_PAGES, pages)
                self.stats.add(reg.SAFS_DEDUP_WAITS)
                self.stats.add(
                    reg.SAFS_DEDUP_WAIT_SECONDS, leader_done - issue_time
                )
                if self.obs is not None:
                    self.obs.io_event(
                        "dedup", leader_done,
                        pages=pages,
                        wait=leader_done - issue_time,
                    )
                return leader_done, True
        done = self._fetch_extent(issue_time, flash_first, flash_count)
        if inflight is not None:
            inflight.record(file_id, flash_first, flash_count, done)
        return done, False

    def _verified_page(self, file: SAFSFile, page_no: int):
        """One page's bytes, checked against its checksum when engaged."""
        data = file.read_page(page_no, self.page_size)
        if self.integrity is not None:
            self.integrity.verify(file.file_id, page_no, data)
        return data

    def _current_cache(self) -> PageCache:
        """The cache the current tenant's dispatches run against."""
        if self.tenant_caches is not None and self.tenant is not None:
            partition = self.tenant_caches.get(self.tenant)
            if partition is not None:
                return partition
        return self.cache

    def _rollback_inserted(self, cache: PageCache, inserted) -> None:
        """Drop pages cached by an aborted dispatch.

        An unrecoverable span leaves the cache as if the dispatch never
        ran (evictions aside): the request's user task will never fire,
        and a degraded re-run should observe a consistent cache.
        """
        dropped = 0
        for file_id, page_no in inserted:
            if cache.invalidate(file_id, page_no):
                dropped += 1
        if dropped:
            self.stats.add(reg.FAULTS_INVALIDATED_PAGES, dropped)

    def dispatch(self, merged: MergedRequest, issue_time: float) -> Tuple[float, float, bool]:
        """Service one merged request issued at ``issue_time``.

        Returns ``(completion_time, cpu_cost, full_hit)``:

        - ``completion_time`` — when every page of the span is in the cache,
        - ``cpu_cost`` — CPU seconds consumed issuing the request (cache
          lookups, request submission, kernel-side page transfers),
        - ``full_hit`` — whether no device access was needed.
        """
        if merged.file.file_id not in self._file_bases:
            raise ValueError(f"file {merged.file.name!r} was never registered")
        cm = self.cost_model
        cache = self._current_cache()
        cpu_cost = cm.cpu_per_io_request
        completion = issue_time
        pages_fetched = 0
        pages_deduped = 0

        # Walk the span, grouping consecutive misses into device runs.
        run_start: Optional[int] = None
        spans: List[Tuple[int, int]] = []
        for page_no in range(merged.first_page, merged.last_page + 1):
            cpu_cost += cm.cpu_per_cache_lookup
            if cache.lookup(merged.file.file_id, page_no) is None:
                if run_start is None:
                    run_start = page_no
            elif run_start is not None:
                spans.append((run_start, page_no - run_start))
                run_start = None
        if run_start is not None:
            spans.append((run_start, merged.last_page + 1 - run_start))
        if self.obs is not None:
            self.obs.io_event(
                "cache_lookup", issue_time,
                pages=merged.num_pages,
                misses=sum(length for _, length in spans),
            )

        inserted: List[Tuple[int, int]] = []
        hits = merged.num_pages - sum(length for _, length in spans)
        for start, length in spans:
            flash_first, flash_count = self._flash_extent(merged.file, start, length)
            try:
                done, deduped = self._fetch_or_attach(
                    merged.file.file_id, issue_time,
                    flash_first, flash_count, length,
                )
            except UnrecoverableIOError:
                self._rollback_inserted(cache, inserted)
                self._count_aborted_dispatch(
                    hits, pages_fetched, pages_deduped
                )
                raise
            if done > completion:
                completion = done
            if deduped:
                pages_deduped += length
            else:
                pages_fetched += length
            for page_no in range(start, start + length):
                data = merged.file.read_page(page_no, self.page_size)
                if self.integrity is not None:
                    self.integrity.verify(merged.file.file_id, page_no, data)
                cache.insert(Page(merged.file.file_id, page_no, data))
                inserted.append((merged.file.file_id, page_no))

        # Deduped pages skip the device but still cross the kernel into
        # this dispatch's cache, so they pay the same transfer CPU; with
        # dedup off the expression reduces bit-identically to the legacy
        # ``pages_fetched * flash_per_page * transfer``.
        cpu_cost += (
            (pages_fetched + pages_deduped)
            * self._flash_per_page
            * cm.cpu_per_page_transfer
        )
        full_hit = not spans
        self._count_dispatch(merged.num_pages, pages_fetched, full_hit)
        return completion, cpu_cost, full_hit

    def dispatch_span(
        self, file: SAFSFile, first_page: int, last_page: int, issue_time: float
    ) -> Tuple[float, float, bool]:
        """Bulk-path twin of :meth:`dispatch` for one page span.

        Takes the span directly (no :class:`MergedRequest` object), probes
        the cache with one :meth:`~repro.safs.page_cache.PageCache.lookup_range`
        call, and charges issue CPU from the precomputed cumulative table.
        Device submissions, cache mutations and every counter are identical
        to :meth:`dispatch` on the same span.
        """
        if file.file_id not in self._file_bases:
            raise ValueError(f"file {file.name!r} was never registered")
        cm = self.cost_model
        cache = self._current_cache()
        completion = issue_time
        pages_fetched = 0
        pages_deduped = 0
        num_pages = last_page - first_page + 1
        cpu_cost = self._issue_cost(num_pages)

        hit_mask = cache.lookup_range(file.file_id, first_page, last_page)
        if hit_mask.all():
            runs: List[Tuple[int, int]] = []
        else:
            # Miss runs: starts where a miss follows a hit (or the span
            # start), ends symmetrically.
            miss = ~hit_mask
            edges = np.diff(miss.astype(np.int8))
            starts = np.nonzero(edges == 1)[0] + 1
            ends = np.nonzero(edges == -1)[0] + 1
            if miss[0]:
                starts = np.concatenate([[0], starts])
            if miss[-1]:
                ends = np.concatenate([ends, [num_pages]])
            runs = [
                (first_page + int(s), int(e - s)) for s, e in zip(starts, ends)
            ]
        if self.obs is not None:
            self.obs.io_event(
                "cache_lookup", issue_time,
                pages=num_pages,
                misses=sum(length for _, length in runs),
            )

        inserted: List[Tuple[int, int]] = []
        hits = num_pages - sum(length for _, length in runs)
        for start, length in runs:
            flash_first, flash_count = self._flash_extent(file, start, length)
            try:
                done, deduped = self._fetch_or_attach(
                    file.file_id, issue_time, flash_first, flash_count, length
                )
            except UnrecoverableIOError:
                self._rollback_inserted(cache, inserted)
                self._count_aborted_dispatch(
                    hits, pages_fetched, pages_deduped
                )
                raise
            if done > completion:
                completion = done
            if deduped:
                pages_deduped += length
            else:
                pages_fetched += length
            cache.insert_range(
                Page(file.file_id, page_no, self._verified_page(file, page_no))
                for page_no in range(start, start + length)
            )
            inserted.extend((file.file_id, page_no) for page_no in range(start, start + length))

        cpu_cost += (
            (pages_fetched + pages_deduped)
            * self._flash_per_page
            * cm.cpu_per_page_transfer
        )
        full_hit = not runs
        self._count_dispatch(num_pages, pages_fetched, full_hit)
        return completion, cpu_cost, full_hit

    def _count_aborted_dispatch(
        self, hits: int, pages_fetched: int, pages_deduped: int
    ) -> None:
        """Partial accounting for a dispatch killed by an unrecoverable
        fault: only the pages it actually *serviced* before dying (its
        cache hits — already tallied by the lookup walk — plus completed
        fetch/attach runs) count as requested, which keeps the page
        conservation law ``io.pages_requested == cache.hits +
        io.pages_fetched + safs.dedup_pages`` exact even when spans
        abort mid-walk.  The failing run itself lands in no counter, and
        the dispatch stays out of ``io.dispatched`` / the size histogram
        (those count issued requests, not service outcomes)."""
        self.stats.add(reg.IO_PAGES_REQUESTED, hits + pages_fetched + pages_deduped)
        self.stats.add(reg.IO_PAGES_FETCHED, pages_fetched)

    def _count_dispatch(self, pages: int, pages_fetched: int, full_hit: bool) -> None:
        # Request-size histogram: §3.6 — issued requests range from one
        # page to many megabytes depending on how well merging worked.
        if pages == 1:
            self.stats.add(reg.IO_SIZE_1_PAGE)
        elif pages <= 8:
            self.stats.add(reg.IO_SIZE_2_8_PAGES)
        elif pages <= 64:
            self.stats.add(reg.IO_SIZE_9_64_PAGES)
        else:
            self.stats.add(reg.IO_SIZE_65PLUS_PAGES)
        self.stats.add(reg.IO_DISPATCHED)
        self.stats.add(reg.IO_PAGES_REQUESTED, pages)
        self.stats.add(reg.IO_PAGES_FETCHED, pages_fetched)
        if full_hit:
            self.stats.add(reg.IO_FULL_HITS)
