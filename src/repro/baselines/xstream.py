"""An X-Stream-like edge-centric engine (Roy et al. [23]).

X-Stream's scatter-gather model streams *all edges* every iteration:
scatter reads the edge list sequentially and appends updates for the
destinations of active sources; gather streams the updates back into
vertex state.  Random access is confined to vertex state inside a
streaming partition.  Like GraphChi, the full dataset moves every
iteration — traversals with tiny frontiers still pay for every edge,
which is the Figure 11 story.

X-Stream does implement BFS (it just scans everything), and triangle
counting via a semi-streaming algorithm [4] (several passes).
"""

from dataclasses import dataclass
from typing import Optional

from repro.baselines.common import (
    BaselineReport,
    WorkloadTrace,
    bc_trace,
    bfs_trace,
    pagerank_trace,
    triangle_trace,
    wcc_trace,
)
from repro.graph.builder import GraphImage
from repro.sim.ssd_array import SSDArrayConfig

#: Bytes appended to the update stream per scattered edge.
UPDATE_BYTES = 8


@dataclass(frozen=True)
class XStreamCostModel:
    """X-Stream-specific constants over the shared SSD array."""

    #: Software-RAID efficiency (kernel block layer, as for GraphChi).
    raid_efficiency: float = 0.5
    #: CPU per streamed edge (scatter test + possible update append).
    cpu_per_edge: float = 9e-9
    #: CPU per update gathered into vertex state.
    cpu_per_update: float = 10e-9
    #: CPU cores.
    num_cores: int = 32
    #: Per-iteration fixed cost (partition swap, buffers).
    iteration_overhead: float = 4e-3
    #: Passes of the semi-streaming triangle counting algorithm.
    triangle_passes: int = 4


class XStreamEngine:
    """Runs workload traces under the X-Stream cost model."""

    SUPPORTED = ("bfs", "pagerank", "wcc", "triangle_count", "bc")
    name = "xstream"

    def __init__(
        self,
        image: GraphImage,
        cost_model: Optional[XStreamCostModel] = None,
        array_config: Optional[SSDArrayConfig] = None,
    ) -> None:
        self.image = image
        self.cost = cost_model or XStreamCostModel()
        self.array_config = array_config or SSDArrayConfig()

    @property
    def _bandwidth(self) -> float:
        return self.array_config.max_bandwidth * self.cost.raid_efficiency

    @property
    def _edge_bytes(self) -> int:
        # X-Stream streams the raw edge array (src, dst) once per iteration.
        return self.image.out_csr.num_edges * 8

    def run(self, algorithm: str, source: int = 0, max_iterations: int = 30) -> BaselineReport:
        """Execute ``algorithm`` and report time/IO/memory."""
        if algorithm == "bfs":
            _, trace = bfs_trace(self.image, source)
        elif algorithm == "pagerank":
            _, trace = pagerank_trace(self.image, max_iterations=max_iterations)
        elif algorithm == "wcc":
            _, trace = wcc_trace(self.image)
        elif algorithm == "bc":
            _, trace = bc_trace(self.image, source)
        elif algorithm == "triangle_count":
            return self._triangle_report()
        else:
            raise ValueError(f"unsupported algorithm {algorithm!r}")
        return self._scatter_gather_report(trace)

    def _scatter_gather_report(self, trace: WorkloadTrace) -> BaselineReport:
        cost = self.cost
        total_edges = self.image.out_csr.num_edges
        runtime = 0.0
        reads = 0.0
        writes = 0.0
        for stats in trace.iterations:
            updates = stats.edges_traversed
            read_bytes = self._edge_bytes + updates * UPDATE_BYTES
            write_bytes = updates * UPDATE_BYTES
            io_time = (read_bytes + write_bytes) / self._bandwidth
            cpu = (
                total_edges * cost.cpu_per_edge
                + updates * cost.cpu_per_update
            )
            runtime += max(io_time, cpu / cost.num_cores) + cost.iteration_overhead
            reads += read_bytes
            writes += write_bytes
        return self._report(trace, runtime, reads, writes)

    def _triangle_report(self) -> BaselineReport:
        total, trace = triangle_trace(self.image)
        cost = self.cost
        # The semi-streaming algorithm [4] materialises candidate wedges
        # (2-paths) on disk and joins them against the edge stream: the
        # wedge stream, not the graph itself, dominates the I/O.  Wedge
        # volume is exactly the intersection workload of the trace.
        wedge_bytes = trace.total_edges * UPDATE_BYTES
        reads = float(self._edge_bytes * cost.triangle_passes + wedge_bytes)
        writes = float(wedge_bytes)
        cpu = trace.total_edges * cost.cpu_per_edge * 2
        runtime = (
            max((reads + writes) / self._bandwidth, cpu / cost.num_cores)
            + cost.triangle_passes * cost.iteration_overhead
        )
        report = self._report(trace, runtime, reads, writes)
        report.details["triangles"] = total
        return report

    def memory_bytes(self) -> float:
        """Vertex state per streaming partition plus stream buffers."""
        return 16.0 * self.image.num_vertices + 0.3 * self._edge_bytes

    def _report(
        self, trace: WorkloadTrace, runtime: float, reads: float, writes: float
    ) -> BaselineReport:
        return BaselineReport(
            system=self.name,
            algorithm=trace.algorithm,
            runtime=runtime,
            iterations=trace.num_iterations,
            bytes_read=reads,
            bytes_written=writes,
            memory_bytes=self.memory_bytes(),
            details={"total_edges_processed": trace.total_edges},
        )
