"""A PEGASUS-like GIM-V engine over a MapReduce cost model ([13], §2).

PEGASUS expresses graph algorithms as *generalized iterated matrix-vector
multiplication* on Hadoop: every iteration is a full MapReduce job that
joins the edge file with the vector file, shuffles, and reduces.  The
paper's related-work point is that this works tolerably for PageRank-like
computations and terribly for traversals — every iteration pays the full
scan-shuffle-materialise cost no matter how small the frontier, plus the
per-job scheduling latency Hadoop is famous for.

The actual numerics run through ``scipy.sparse`` (a genuine GIM-V
implementation); only job times come from the MapReduce model.
"""

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.baselines.common import (
    BaselineReport,
    bfs_trace,
    pagerank_trace,
    wcc_trace,
)
from repro.graph.builder import GraphImage


@dataclass(frozen=True)
class PegasusCostModel:
    """Hadoop-cluster constants (modest cluster of the paper's era)."""

    #: Worker machines in the Hadoop cluster.
    num_machines: int = 16
    #: Per-machine streaming bandwidth for scan + shuffle, bytes/second.
    machine_bandwidth: float = 100e6
    #: Bytes of the edge file touched per iteration, per edge (join input).
    bytes_per_edge: float = 16.0
    #: Bytes shuffled per produced partial result.
    bytes_per_message: float = 24.0
    #: Per-job scheduling and startup latency (the MapReduce floor).
    job_latency: float = 15.0
    #: CPU per edge combined in map+reduce.
    cpu_per_edge: float = 60e-9
    #: Cores per machine.
    cores_per_machine: int = 8


class PegasusEngine:
    """Runs GIM-V workloads under the MapReduce cost model."""

    SUPPORTED = ("pagerank", "wcc", "bfs")
    name = "pegasus"

    def __init__(
        self, image: GraphImage, cost_model: Optional[PegasusCostModel] = None
    ) -> None:
        self.image = image
        self.cost = cost_model or PegasusCostModel()
        self._matrix = self._build_matrix()

    def _build_matrix(self) -> sp.csr_matrix:
        csr = self.image.out_csr
        n = self.image.num_vertices
        indptr = np.asarray(csr.indptr, dtype=np.int64)
        indices = np.asarray(csr.indices, dtype=np.int64)
        data = np.ones(indices.size)
        return sp.csr_matrix((data, indices, indptr), shape=(n, n))

    # -- genuine GIM-V numerics ----------------------------------------

    def gimv_pagerank(
        self, damping: float = 0.85, max_iterations: int = 30
    ) -> Tuple[np.ndarray, int]:
        """PageRank as iterated matrix-vector products (no dangling
        redistribution, matching the engine's delta formulation)."""
        n = self.image.num_vertices
        out_deg = np.asarray(self._matrix.sum(axis=1)).ravel()
        inv = np.zeros(n)
        nonzero = out_deg > 0
        inv[nonzero] = 1.0 / out_deg[nonzero]
        scaled = sp.diags(inv) @ self._matrix
        rank = np.full(n, 1.0 - damping)
        for iteration in range(max_iterations):
            updated = (1.0 - damping) + damping * (scaled.T @ rank)
            converged = np.abs(updated - rank).max() < 1e-12
            rank = updated
            if converged:
                return rank, iteration + 1
        return rank, max_iterations

    def gimv_wcc(self) -> Tuple[np.ndarray, int]:
        """Connected components as iterated min-plus products."""
        n = self.image.num_vertices
        undirected = self._matrix + self._matrix.T
        labels = np.arange(n, dtype=np.int64)
        iterations = 0
        while True:
            iterations += 1
            proposals = labels.copy()
            coo = undirected.tocoo()
            np.minimum.at(proposals, coo.col, labels[coo.row])
            if np.array_equal(proposals, labels):
                return labels, iterations
            labels = proposals

    # -- timing ----------------------------------------------------------

    def run(self, algorithm: str, source: int = 0, max_iterations: int = 30) -> BaselineReport:
        """Execute ``algorithm`` and report MapReduce-cluster time."""
        if algorithm == "pagerank":
            _, trace = pagerank_trace(self.image, max_iterations=max_iterations)
        elif algorithm == "wcc":
            _, trace = wcc_trace(self.image)
        elif algorithm == "bfs":
            # Sparse-vector GIM-V still scans the full matrix per job.
            _, trace = bfs_trace(self.image, source)
        else:
            raise ValueError(f"unsupported algorithm {algorithm!r}")
        cost = self.cost
        total_edges = self.image.out_csr.num_edges
        cluster_bandwidth = cost.num_machines * cost.machine_bandwidth
        cluster_cores = cost.num_machines * cost.cores_per_machine
        runtime = 0.0
        bytes_read = 0.0
        for stats in trace.iterations:
            scan = total_edges * cost.bytes_per_edge
            shuffle = stats.edges_traversed * cost.bytes_per_message
            io_time = (scan + shuffle) / cluster_bandwidth
            cpu_time = total_edges * cost.cpu_per_edge / cluster_cores
            runtime += max(io_time, cpu_time) + cost.job_latency
            bytes_read += scan + shuffle
        return BaselineReport(
            system=self.name,
            algorithm=trace.algorithm,
            runtime=runtime,
            iterations=trace.num_iterations,
            bytes_read=bytes_read,
            bytes_written=bytes_read,  # materialised between jobs
            memory_bytes=cost.num_machines * 64e6,
            details={"total_edges_processed": trace.total_edges},
        )
