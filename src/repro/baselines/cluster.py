"""Cluster-scale comparators for the §5.6 discussion: Pregel and Trinity.

§5.6 contrasts FlashGraph's single machine against published cluster
results: Pregel ran shortest paths on a 1B-vertex random graph on **300
multicore machines** in a bit over ten minutes; Trinity took over ten
minutes for BFS on a 1B-vertex graph on **14 twelve-core machines**.

These models capture the two regimes:

- :class:`PregelEngine` — synchronous message passing where every cross-
  machine edge moves one message over the network per superstep; hash
  partitioning, so the cut fraction is ``1 - 1/machines``.
- :class:`TrinityEngine` — a memory-cloud design that restricts
  communication to direct neighbors and batches aggressively, modelled as
  Pregel with a lower per-message byte count and latency but fewer
  machines.

Both run real workload traces, so superstep counts are exact.
"""

from dataclasses import dataclass
from typing import Optional

from repro.baselines.common import (
    BaselineReport,
    WorkloadTrace,
    bfs_trace,
    pagerank_trace,
    wcc_trace,
)
from repro.graph.builder import GraphImage


@dataclass(frozen=True)
class ClusterCostModel:
    """Shared cluster-model knobs."""

    num_machines: int = 300
    cores_per_machine: int = 8
    #: Per-machine network bandwidth, bytes/second (1 GbE for Pregel's era).
    network_bandwidth: float = 125e6
    #: Synchronisation latency per superstep.
    barrier_latency: float = 50e-3
    #: Bytes per cross-machine message.
    bytes_per_message: float = 20.0
    #: CPU per edge processed.
    cpu_per_edge: float = 30e-9


class _ClusterEngine:
    """Common machinery: trace → superstep times under a cluster model."""

    SUPPORTED = ("bfs", "pagerank", "wcc")
    name = "cluster"

    def __init__(
        self, image: GraphImage, cost_model: Optional[ClusterCostModel] = None
    ) -> None:
        self.image = image
        self.cost = cost_model or self.default_cost_model()
        if self.cost.num_machines < 1:
            raise ValueError("need at least one machine")

    @staticmethod
    def default_cost_model() -> ClusterCostModel:
        return ClusterCostModel()

    def run(self, algorithm: str, source: int = 0, max_iterations: int = 30) -> BaselineReport:
        """Execute ``algorithm`` and report cluster time."""
        if algorithm == "bfs":
            _, trace = bfs_trace(self.image, source)
        elif algorithm == "pagerank":
            _, trace = pagerank_trace(self.image, max_iterations=max_iterations)
        elif algorithm == "wcc":
            _, trace = wcc_trace(self.image)
        else:
            raise ValueError(f"unsupported algorithm {algorithm!r}")
        return self._time_trace(trace)

    def _time_trace(self, trace: WorkloadTrace) -> BaselineReport:
        cost = self.cost
        machines = cost.num_machines
        cut_fraction = 1.0 - 1.0 / machines  # random hash partitioning
        total_cores = machines * cost.cores_per_machine
        cluster_bandwidth = machines * cost.network_bandwidth
        runtime = 0.0
        network_bytes = 0.0
        for stats in trace.iterations:
            compute = stats.edges_traversed * cost.cpu_per_edge / total_cores
            messages = stats.edges_traversed * cut_fraction
            wire = messages * cost.bytes_per_message
            network = wire / cluster_bandwidth
            runtime += compute + network + cost.barrier_latency
            network_bytes += wire
        return BaselineReport(
            system=self.name,
            algorithm=trace.algorithm,
            runtime=runtime,
            iterations=trace.num_iterations,
            bytes_read=0.0,
            bytes_written=0.0,
            memory_bytes=machines * 32e6 + 16.0 * self.image.out_csr.num_edges,
            details={
                "num_machines": float(machines),
                "network_bytes": network_bytes,
            },
        )


class PregelEngine(_ClusterEngine):
    """Pregel [20]: 300 machines, plain synchronous message passing."""

    name = "pregel"

    @staticmethod
    def default_cost_model() -> ClusterCostModel:
        return ClusterCostModel(
            num_machines=300,
            cores_per_machine=8,
            network_bandwidth=125e6,
            barrier_latency=50e-3,
            bytes_per_message=20.0,
            cpu_per_edge=30e-9,
        )


class TrinityEngine(_ClusterEngine):
    """Trinity [24]: 14 machines, memory cloud, neighbor-restricted and
    batched communication (fewer bytes, tighter barriers)."""

    name = "trinity"

    @staticmethod
    def default_cost_model() -> ClusterCostModel:
        return ClusterCostModel(
            num_machines=14,
            cores_per_machine=12,
            network_bandwidth=1.25e9,
            barrier_latency=10e-3,
            bytes_per_message=8.0,
            cpu_per_edge=25e-9,
        )
