"""A PowerGraph-like GAS engine (Gonzalez et al. [11]).

PowerGraph expresses algorithms as gather-apply-scatter over a vertex-cut
partitioning.  The paper runs it in multi-thread mode on the same machine
(its best configuration there) using the synchronous engine; it still
loses to FlashGraph by a wide margin because the GAS abstraction pays for
replica bookkeeping, fine-grained synchronisation, and a full
gather/apply/scatter cycle per active vertex per superstep.

The engine also supports a distributed mode (``num_machines > 1``) that
adds network synchronisation of vertex replicas — the configuration
Pregel/Trinity-style comparisons in §5.6 allude to.  The replication
factor is *measured* from an actual random vertex-cut of the input graph,
not assumed.
"""

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baselines.common import (
    BaselineReport,
    bc_trace,
    bfs_trace,
    pagerank_trace,
    triangle_trace,
    wcc_trace,
)
from repro.graph.builder import GraphImage


@dataclass(frozen=True)
class PowerGraphCostModel:
    """PowerGraph-specific constants."""

    #: Machines; 1 = the paper's multi-thread single-machine mode.
    num_machines: int = 1
    #: CPU per gathered/scattered edge (GAS machinery, locks).
    cpu_per_edge: float = 45e-9
    #: CPU per active vertex per superstep (gather-apply-scatter cycle).
    cpu_per_vertex: float = 600e-9
    #: Cores per machine.
    cores_per_machine: int = 32
    #: Synchronous-engine barrier per superstep.
    iteration_overhead: float = 4e-3
    #: Bytes exchanged per replica synchronisation.
    replica_sync_bytes: float = 16.0
    #: Per-machine network bandwidth (10 GbE), distributed mode only.
    network_bandwidth: float = 1.25e9
    #: Network round-trip added per superstep, distributed mode only.
    network_latency: float = 1e-3


class PowerGraphEngine:
    """Runs workload traces under the PowerGraph cost model."""

    SUPPORTED = ("bfs", "bc", "pagerank", "wcc", "triangle_count")
    name = "powergraph"

    def __init__(
        self,
        image: GraphImage,
        cost_model: Optional[PowerGraphCostModel] = None,
        seed: int = 0,
    ) -> None:
        self.image = image
        self.cost = cost_model or PowerGraphCostModel()
        if self.cost.num_machines < 1:
            raise ValueError("need at least one machine")
        self._replication = self._measure_replication(seed)

    @property
    def replication_factor(self) -> float:
        """Average replicas per vertex under a random vertex-cut."""
        return self._replication

    def _measure_replication(self, seed: int) -> float:
        machines = self.cost.num_machines
        if machines == 1:
            return 1.0
        rng = np.random.default_rng(seed)
        indptr = self.image.out_csr.indptr
        indices = self.image.out_csr.indices
        num_edges = indices.size
        assignment = rng.integers(0, machines, size=num_edges)
        # A vertex is replicated on every machine one of its edges lands on.
        src = np.repeat(np.arange(self.image.num_vertices), np.diff(indptr))
        dst = indices.astype(np.int64)
        present = set()
        for endpoint in (src, dst):
            keys = endpoint * machines + assignment
            present.update(np.unique(keys).tolist())
        touched = len({k // machines for k in present})
        if touched == 0:
            return 1.0
        return len(present) / touched

    def run(self, algorithm: str, source: int = 0, max_iterations: int = 30) -> BaselineReport:
        """Execute ``algorithm`` and report time/memory."""
        if algorithm == "bfs":
            _, trace = bfs_trace(self.image, source)
        elif algorithm == "bc":
            _, trace = bc_trace(self.image, source)
        elif algorithm == "pagerank":
            _, trace = pagerank_trace(self.image, max_iterations=max_iterations)
        elif algorithm == "wcc":
            _, trace = wcc_trace(self.image)
        elif algorithm == "triangle_count":
            _, trace = triangle_trace(self.image)
        else:
            raise ValueError(f"unsupported algorithm {algorithm!r}")
        cost = self.cost
        total_cores = cost.num_machines * cost.cores_per_machine
        runtime = 0.0
        network_bytes = 0.0
        for stats in trace.iterations:
            cpu = (
                stats.edges_traversed * cost.cpu_per_edge
                + stats.active_vertices * cost.cpu_per_vertex
            )
            step = cpu / total_cores + cost.iteration_overhead
            if cost.num_machines > 1:
                sync = (
                    stats.active_vertices
                    * (self._replication - 1.0)
                    * cost.replica_sync_bytes
                )
                step += (
                    sync / (cost.num_machines * cost.network_bandwidth)
                    + cost.network_latency
                )
                network_bytes += sync
            runtime += step
        return BaselineReport(
            system=self.name,
            algorithm=trace.algorithm,
            runtime=runtime,
            iterations=trace.num_iterations,
            bytes_read=0.0,
            bytes_written=0.0,
            memory_bytes=self.memory_bytes(),
            details={
                "total_edges_processed": trace.total_edges,
                "replication_factor": self._replication,
                "network_bytes": network_bytes,
            },
        )

    def memory_bytes(self) -> float:
        """Edges once plus replicated vertex state and GAS accumulators."""
        edges = self.image.out_csr.num_edges
        return 16.0 * edges + 48.0 * self.image.num_vertices * self._replication
