"""A Galois-like in-memory engine (Nguyen et al. [21]).

Galois is the paper's state-of-the-art in-memory comparator: a low-level
programming abstraction with a sophisticated task scheduler and hand-tuned
data structures.  We model it as the cheapest-constant in-memory execution
of each workload, with two behaviours the paper calls out explicitly:

- its BFS/BC use direction-optimizing traversal (Beamer et al. [3]),
  examining far fewer edges than top-down BFS — why Galois wins the
  traversal bars of Figure 10;
- its PageRank/WCC push updates with atomics rather than FlashGraph's
  buffered messages, paying slightly more per edge — why in-memory
  FlashGraph wins those bars.
"""

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.baselines.common import (
    BaselineReport,
    IterationStats,
    WorkloadTrace,
    pagerank_trace,
    scan_trace,
    triangle_trace,
    wcc_trace,
)
from repro.graph.builder import GraphImage


@dataclass(frozen=True)
class GaloisCostModel:
    """Galois-specific constants."""

    #: CPU per edge examined by the direction-optimizing traversal.
    cpu_per_edge_traversal: float = 3e-9
    #: CPU per edge for atomic push-style updates (PR, WCC).  Higher than
    #: the traversal constant: pushes to power-law hubs contend on the
    #: same cache lines, which FlashGraph's buffered message passing
    #: avoids (§3.4.1) — this is why FG-mem wins PR/WCC in Figure 10.
    cpu_per_edge_atomic: float = 55e-9
    #: CPU per unit of set-intersection work (TC, SS).
    cpu_per_edge_intersect: float = 5e-9
    #: CPU per scheduled vertex task.
    cpu_per_vertex: float = 50e-9
    #: Parallel efficiency of the atomic push path: contended updates to
    #: power-law hubs serialize on their cache lines, so PR/WCC scale
    #: sublinearly — the effect FlashGraph's buffered messages sidestep.
    atomic_parallel_efficiency: float = 0.55
    #: CPU cores.
    num_cores: int = 32
    #: Barrier/scheduler cost per round.
    iteration_overhead: float = 30e-6
    #: Frontier fraction at which BFS flips to bottom-up.
    bottom_up_fraction: float = 0.05


def direction_optimizing_trace(
    image: GraphImage, source: int, bottom_up_fraction: float
) -> Tuple[np.ndarray, WorkloadTrace]:
    """Exact edges-examined trace of a Beamer-style BFS."""
    n = image.num_vertices
    out_indptr, out_indices = image.out_csr.indptr, image.out_csr.indices
    in_indptr, in_indices = image.in_csr.indptr, image.in_csr.indices
    levels = np.full(n, -1, dtype=np.int64)
    levels[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    trace = WorkloadTrace("bfs")
    level = 0
    bottom_up = False
    while frontier.size:
        if not bottom_up and frontier.size > bottom_up_fraction * n:
            bottom_up = True
        if bottom_up:
            unvisited = np.nonzero(levels == -1)[0]
            examined = 0
            adopted = []
            for v in unvisited:
                parents = in_indices[in_indptr[v] : in_indptr[v + 1]]
                hits = np.nonzero(levels[parents] == level)[0]
                if hits.size:
                    # Beamer's early exit: stop at the first found parent.
                    examined += int(hits[0]) + 1
                    adopted.append(v)
                else:
                    examined += parents.size
            trace.iterations.append(IterationStats(int(unvisited.size), examined))
            frontier = np.asarray(adopted, dtype=np.int64)
        else:
            examined = int((out_indptr[frontier + 1] - out_indptr[frontier]).sum())
            trace.iterations.append(IterationStats(int(frontier.size), examined))
            chunks = [out_indices[out_indptr[v] : out_indptr[v + 1]] for v in frontier]
            neighbors = (
                np.unique(np.concatenate(chunks)).astype(np.int64)
                if chunks
                else np.zeros(0, dtype=np.int64)
            )
            frontier = neighbors[levels[neighbors] == -1]
        level += 1
        levels[frontier] = level
    return levels, trace


class GaloisEngine:
    """Runs workload traces under the Galois cost model."""

    SUPPORTED = ("bfs", "bc", "pagerank", "wcc", "triangle_count", "scan_statistics")
    name = "galois"

    def __init__(
        self, image: GraphImage, cost_model: Optional[GaloisCostModel] = None
    ) -> None:
        self.image = image
        self.cost = cost_model or GaloisCostModel()

    def run(self, algorithm: str, source: int = 0, max_iterations: int = 30) -> BaselineReport:
        """Execute ``algorithm`` and report time/memory."""
        cost = self.cost
        if algorithm == "bfs":
            _, trace = direction_optimizing_trace(
                self.image, source, cost.bottom_up_fraction
            )
            rate = cost.cpu_per_edge_traversal
        elif algorithm == "bc":
            _, trace = direction_optimizing_trace(
                self.image, source, cost.bottom_up_fraction
            )
            # Back propagation revisits the traversal's edges once more.
            backward = [
                IterationStats(s.active_vertices, s.edges_traversed)
                for s in reversed(trace.iterations)
            ]
            trace = WorkloadTrace("bc", trace.iterations + backward)
            rate = cost.cpu_per_edge_traversal
        elif algorithm == "pagerank":
            _, trace = pagerank_trace(self.image, max_iterations=max_iterations)
            rate = cost.cpu_per_edge_atomic
        elif algorithm == "wcc":
            _, trace = wcc_trace(self.image)
            rate = cost.cpu_per_edge_atomic
        elif algorithm == "triangle_count":
            _, trace = triangle_trace(self.image)
            rate = cost.cpu_per_edge_intersect
        elif algorithm == "scan_statistics":
            _, trace = scan_trace(self.image)
            rate = cost.cpu_per_edge_intersect
        else:
            raise ValueError(f"unsupported algorithm {algorithm!r}")
        effective_cores = float(cost.num_cores)
        if algorithm in ("pagerank", "wcc"):
            effective_cores *= cost.atomic_parallel_efficiency
        runtime = 0.0
        for stats in trace.iterations:
            cpu = (
                stats.edges_traversed * rate
                + stats.active_vertices * cost.cpu_per_vertex
            )
            runtime += cpu / effective_cores + cost.iteration_overhead
        return BaselineReport(
            system=self.name,
            algorithm=trace.algorithm,
            runtime=runtime,
            iterations=trace.num_iterations,
            bytes_read=0.0,
            bytes_written=0.0,
            memory_bytes=self.memory_bytes(),
            details={"total_edges_processed": trace.total_edges},
        )

    def memory_bytes(self) -> float:
        """The in-memory CSR (both directions) plus per-vertex state."""
        edges = self.image.out_csr.num_edges
        if self.image.directed:
            edges *= 2
        return 8.0 * edges + 16.0 * self.image.num_vertices
