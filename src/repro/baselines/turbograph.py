"""A TurboGraph-like SSD engine ([12], §2 and §5.4.2).

TurboGraph also reads vertices selectively from SSDs and overlaps I/O and
computation, but its external-memory representation forces *much larger*
I/O units than FlashGraph's — multi-megabyte pages — so a selective read
of one vertex's edges drags in whole blocks of its neighbors' data.  The
paper's Figure 13 page-size sweep is an argument-by-proxy that this is
suboptimal; this baseline makes the comparison direct by running the
FlashGraph engine itself with TurboGraph's block size.
"""

from dataclasses import dataclass
from typing import Optional

from repro.baselines.common import BaselineReport
from repro.core.config import EngineConfig, ExecutionMode
from repro.core.engine import GraphEngine
from repro.graph.builder import GraphImage
from repro.safs.filesystem import SAFS, SAFSConfig
from repro.sim.ssd_array import SSDArray, SSDArrayConfig


@dataclass(frozen=True)
class TurboGraphCostModel:
    """TurboGraph-specific knobs."""

    #: I/O unit: TurboGraph uses multi-megabyte pages.  At this
    #: reproduction's 1/4096 byte scale a paper-sized 4MB block would
    #: swallow the whole graph, so the default keeps the paper's
    #: graph:block ratio instead (a few hundred blocks per graph).
    block_size: int = 1 << 16
    #: Buffer-pool bytes (its page cache equivalent; the scaled "1GB").
    buffer_bytes: int = 1 << 18
    #: Threads.
    num_threads: int = 32


class TurboGraphEngine:
    """Selective access with TurboGraph's block granularity."""

    SUPPORTED = ("bfs", "pagerank", "wcc")
    name = "turbograph"

    def __init__(
        self,
        image: GraphImage,
        cost_model: Optional[TurboGraphCostModel] = None,
        array_config: Optional[SSDArrayConfig] = None,
    ) -> None:
        self.image = image
        self.cost = cost_model or TurboGraphCostModel()
        self.array_config = array_config or SSDArrayConfig()

    def _make_engine(self) -> GraphEngine:
        array = SSDArray(self.array_config)
        safs = SAFS(
            array,
            SAFSConfig(
                page_size=self.cost.block_size,
                cache_bytes=max(self.cost.buffer_bytes, 2 * self.cost.block_size),
            ),
            stats=array.stats,
        )
        config = EngineConfig(
            mode=ExecutionMode.SEMI_EXTERNAL,
            num_threads=self.cost.num_threads,
            range_shift=8,
        )
        return GraphEngine(self.image, safs=safs, config=config)

    def run(self, algorithm: str, source: int = 0, max_iterations: int = 30) -> BaselineReport:
        """Execute ``algorithm`` with TurboGraph's I/O granularity."""
        from repro.bench.harness import run_algorithm

        names = {"bfs": "bfs", "pagerank": "pr", "wcc": "wcc"}
        if algorithm not in names:
            raise ValueError(f"unsupported algorithm {algorithm!r}")
        engine = self._make_engine()
        result = run_algorithm(engine, names[algorithm], source=source,
                               max_iterations=max_iterations)
        return BaselineReport(
            system=self.name,
            algorithm=algorithm,
            runtime=result.runtime,
            iterations=result.iterations,
            bytes_read=result.bytes_read,
            bytes_written=0.0,
            memory_bytes=result.memory_bytes,
            details={"block_size": float(self.cost.block_size)},
        )
