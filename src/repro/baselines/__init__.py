"""Comparator graph engines (§5.2, §5.3).

The paper compares FlashGraph against four systems we rebuild here as
cost-modelled engines over the *same* simulated hardware:

- :mod:`repro.baselines.graphchi` — GraphChi [16]: parallel sliding
  windows over shards on disk; every iteration streams the whole graph
  sequentially regardless of how many vertices are active.
- :mod:`repro.baselines.xstream` — X-Stream [23]: edge-centric
  scatter-gather over streaming partitions; also scans all edges per
  iteration, plus an update stream written and re-read.
- :mod:`repro.baselines.powergraph` — PowerGraph [11]: synchronous GAS
  over a cluster of machines with random vertex-cut partitioning; network
  communication for replica synchronisation dominates.
- :mod:`repro.baselines.galois` — Galois [21]: a hand-tuned in-memory
  engine with a low-level API; models the cheapest per-edge constants and
  uses direction-optimizing BFS (why it wins traversals in Figure 10).

Every engine consumes the *actual* per-iteration dynamics of each
algorithm (frontier sizes, edges traversed — computed exactly in
:mod:`repro.baselines.common`), so iteration counts and convergence are
real; only service times come from each system's cost model.
"""

from repro.baselines.cluster import PregelEngine, TrinityEngine
from repro.baselines.common import BaselineReport, WorkloadTrace
from repro.baselines.galois import GaloisEngine
from repro.baselines.graphchi import GraphChiEngine
from repro.baselines.pegasus import PegasusEngine
from repro.baselines.powergraph import PowerGraphEngine
from repro.baselines.turbograph import TurboGraphEngine
from repro.baselines.xstream import XStreamEngine

__all__ = [
    "BaselineReport",
    "WorkloadTrace",
    "GaloisEngine",
    "GraphChiEngine",
    "PegasusEngine",
    "PowerGraphEngine",
    "PregelEngine",
    "TrinityEngine",
    "TurboGraphEngine",
    "XStreamEngine",
]
