"""Shared machinery for the baseline engines.

A :class:`WorkloadTrace` is the exact per-iteration dynamics of one
algorithm on one graph — how many vertices were active and how many edges
were traversed each iteration — computed by vectorised reference
implementations over the CSR adjacency.  Baseline engines turn a trace
into time under their own cost models, so every system "runs" the same
real workload and differs only in how it pays for it, which is exactly
the comparison the paper's Figures 10 and 11 make.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.graph.builder import GraphImage


@dataclass(frozen=True)
class IterationStats:
    """One iteration's workload."""

    active_vertices: int
    edges_traversed: int


@dataclass
class WorkloadTrace:
    """Per-iteration dynamics of one algorithm run."""

    algorithm: str
    iterations: List[IterationStats] = field(default_factory=list)

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def total_edges(self) -> int:
        return sum(s.edges_traversed for s in self.iterations)

    @property
    def total_active(self) -> int:
        return sum(s.active_vertices for s in self.iterations)


@dataclass
class BaselineReport:
    """What a baseline engine reports for one run (cf. RunResult)."""

    system: str
    algorithm: str
    runtime: float
    iterations: int
    bytes_read: float
    bytes_written: float
    memory_bytes: float
    details: Dict[str, float] = field(default_factory=dict)


def bfs_trace(image: GraphImage, source: int) -> Tuple[np.ndarray, WorkloadTrace]:
    """Top-down BFS levels plus its per-iteration workload."""
    indptr, indices = image.out_csr.indptr, image.out_csr.indices
    n = image.num_vertices
    levels = np.full(n, -1, dtype=np.int64)
    levels[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    trace = WorkloadTrace("bfs")
    level = 0
    while frontier.size:
        edges = int((indptr[frontier + 1] - indptr[frontier]).sum())
        trace.iterations.append(IterationStats(int(frontier.size), edges))
        chunks = [indices[indptr[v] : indptr[v + 1]] for v in frontier]
        neighbors = (
            np.unique(np.concatenate(chunks)).astype(np.int64)
            if chunks
            else np.zeros(0, dtype=np.int64)
        )
        frontier = neighbors[levels[neighbors] == -1]
        level += 1
        levels[frontier] = level
    return levels, trace


def pagerank_trace(
    image: GraphImage,
    damping: float = 0.85,
    tolerance: float = 1e-6,
    max_iterations: int = 30,
) -> Tuple[np.ndarray, WorkloadTrace]:
    """Delta PageRank values plus workload (active set shrinks over time)."""
    indptr, indices = image.out_csr.indptr, image.out_csr.indices
    n = image.num_vertices
    out_deg = np.diff(indptr)
    rank = np.zeros(n)
    pending = np.full(n, 1.0 - damping)
    trace = WorkloadTrace("pagerank")
    for _ in range(max_iterations):
        active = np.nonzero(pending != 0.0)[0]
        if active.size == 0:
            break
        delta = pending[active]
        rank[active] += delta
        pending[active] = 0.0
        push = damping * delta
        sending = (push > tolerance) & (out_deg[active] > 0)
        senders = active[sending]
        edges = int(out_deg[senders].sum())
        trace.iterations.append(IterationStats(int(active.size), edges))
        if senders.size:
            per_edge = np.repeat(push[sending] / out_deg[senders], out_deg[senders])
            dests = np.concatenate(
                [indices[indptr[v] : indptr[v + 1]] for v in senders]
            ).astype(np.int64)
            np.add.at(pending, dests, per_edge)
    return rank + pending, trace


def wcc_trace(image: GraphImage) -> Tuple[np.ndarray, WorkloadTrace]:
    """Min-label propagation components plus workload."""
    n = image.num_vertices
    out_indptr, out_indices = image.out_csr.indptr, image.out_csr.indices
    in_indptr, in_indices = image.in_csr.indptr, image.in_csr.indices
    labels = np.arange(n, dtype=np.int64)
    active = np.arange(n, dtype=np.int64)
    trace = WorkloadTrace("wcc")
    while active.size:
        edges = int(
            (out_indptr[active + 1] - out_indptr[active]).sum()
            + (in_indptr[active + 1] - in_indptr[active]).sum()
        )
        trace.iterations.append(IterationStats(int(active.size), edges))
        proposals = labels.copy()
        for indptr, indices in ((out_indptr, out_indices), (in_indptr, in_indices)):
            if active.size == n:
                dests = indices.astype(np.int64)
                values = np.repeat(labels, np.diff(indptr))
            else:
                dests = np.concatenate(
                    [indices[indptr[v] : indptr[v + 1]] for v in active]
                ).astype(np.int64)
                values = np.repeat(
                    labels[active], (indptr[active + 1] - indptr[active])
                )
            if dests.size:
                np.minimum.at(proposals, dests, values)
        changed = np.nonzero(proposals < labels)[0]
        labels = proposals
        active = changed
    return labels, trace


def bc_trace(image: GraphImage, source: int) -> Tuple[np.ndarray, WorkloadTrace]:
    """Single-source Brandes dependencies plus workload (fwd + bwd)."""
    levels, forward = bfs_trace(image, source)
    in_indptr = image.in_csr.indptr
    trace = WorkloadTrace("bc")
    trace.iterations.extend(forward.iterations)
    max_level = int(levels.max())
    # Backward sweep touches the in-edges of each level, far to near.
    for level in range(max_level, 0, -1):
        members = np.nonzero(levels == level)[0]
        edges = int((in_indptr[members + 1] - in_indptr[members]).sum())
        trace.iterations.append(IterationStats(int(members.size), edges))
    trace.algorithm = "bc"
    # The dependency values themselves come from the engine's BC program;
    # baselines only need the workload, so return the levels.
    return levels, trace


def triangle_trace(image: GraphImage) -> Tuple[int, WorkloadTrace]:
    """Exact triangle count plus intersection workload.

    Workload counts, for every vertex, the sizes of the adjacency lists it
    must intersect — the same work every engine has to do.
    """
    n = image.num_vertices
    neighbor_sets = []
    out = image.out_csr
    inc = image.in_csr
    for v in range(n):
        merged = np.union1d(out.neighbors(v), inc.neighbors(v)).astype(np.int64)
        neighbor_sets.append(merged[merged != v])
    total = 0
    work = 0
    for v in range(n):
        mine = neighbor_sets[v]
        higher = mine[mine > v]
        for u in higher:
            other = neighbor_sets[int(u)]
            work += mine.size + other.size
            common = np.intersect1d(mine, other, assume_unique=True)
            total += int((common > u).sum())
    trace = WorkloadTrace("triangle_count")
    trace.iterations.append(IterationStats(n, work))
    return total, trace


def scan_trace(image: GraphImage) -> Tuple[int, WorkloadTrace]:
    """Exact maximum locality statistic plus workload (no pruning — the
    unpruned cost generic engines pay)."""
    n = image.num_vertices
    out, inc = image.out_csr, image.in_csr
    neighbor_sets = []
    for v in range(n):
        merged = np.union1d(out.neighbors(v), inc.neighbors(v)).astype(np.int64)
        neighbor_sets.append(merged[merged != v])
    best = 0
    work = 0
    for v in range(n):
        mine = neighbor_sets[v]
        among = 0
        for u in mine:
            other = neighbor_sets[int(u)]
            work += mine.size + other.size
            common = np.intersect1d(mine, other, assume_unique=True)
            among += int((common > u).sum())
        best = max(best, int(mine.size) + among)
    trace = WorkloadTrace("scan_statistics")
    trace.iterations.append(IterationStats(n, work))
    return best, trace
