"""A GraphChi-like external-memory engine (Kyrola et al. [16]).

GraphChi shards the graph into P intervals and processes them with the
parallel sliding windows method: every iteration it *sequentially* reads
the whole graph (each shard plus its sliding windows) and writes updated
edge values back.  That design eliminates random I/O — perfect for
magnetic disks — but means the full dataset is streamed even when only a
handful of vertices are active, which is exactly the behaviour Figure 11
punishes on traversal-style workloads.

GraphChi attaches algorithm values to *edges*, so iterations write as
well as read.  It provides no BFS (the paper notes this); we reproduce
that by refusing the ``bfs`` algorithm.
"""

from dataclasses import dataclass
from typing import Optional

from repro.baselines.common import (
    BaselineReport,
    WorkloadTrace,
    bc_trace,
    pagerank_trace,
    triangle_trace,
    wcc_trace,
)
from repro.graph.builder import GraphImage
from repro.sim.ssd_array import SSDArrayConfig


@dataclass(frozen=True)
class GraphChiCostModel:
    """GraphChi-specific constants over the shared SSD array."""

    #: Shards (execution intervals).
    num_shards: int = 8
    #: Fraction of the array's aggregate bandwidth a kernel-filesystem
    #: software RAID sustains (block-layer overhead; cf. SAFS's 1.0).
    raid_efficiency: float = 0.5
    #: Edge values written back per iteration, as a fraction of graph size.
    write_fraction: float = 0.5
    #: CPU per edge processed by the PSW update machinery.
    cpu_per_edge: float = 14e-9
    #: CPU cores shared with FlashGraph's machine.
    num_cores: int = 32
    #: Per-shard fixed cost per iteration (load window, re-sort).
    shard_overhead: float = 2e-3
    #: Streaming passes a triangle-counting implementation needs.
    triangle_passes: int = 4
    #: CPU per unit of neighbor-join work in triangle counting: PSW must
    #: re-sort and join adjacency fragments across shard windows, paying
    #: well above its streaming per-edge constant.
    cpu_per_join_unit: float = 30e-9


class GraphChiEngine:
    """Runs workload traces under the GraphChi cost model."""

    SUPPORTED = ("pagerank", "wcc", "triangle_count", "bc")
    name = "graphchi"

    def __init__(
        self,
        image: GraphImage,
        cost_model: Optional[GraphChiCostModel] = None,
        array_config: Optional[SSDArrayConfig] = None,
    ) -> None:
        self.image = image
        self.cost = cost_model or GraphChiCostModel()
        self.array_config = array_config or SSDArrayConfig()

    @property
    def _bandwidth(self) -> float:
        return self.array_config.max_bandwidth * self.cost.raid_efficiency

    @property
    def _graph_bytes(self) -> int:
        return self.image.storage_bytes()

    def run(self, algorithm: str, source: int = 0, max_iterations: int = 30) -> BaselineReport:
        """Execute ``algorithm`` and report time/IO/memory."""
        if algorithm == "bfs":
            raise ValueError("GraphChi does not provide a BFS implementation")
        if algorithm == "pagerank":
            _, trace = pagerank_trace(self.image, max_iterations=max_iterations)
            return self._full_scan_report(trace)
        if algorithm == "wcc":
            _, trace = wcc_trace(self.image)
            return self._full_scan_report(trace)
        if algorithm == "bc":
            _, trace = bc_trace(self.image, source)
            return self._full_scan_report(trace)
        if algorithm == "triangle_count":
            _, trace = triangle_trace(self.image)
            return self._triangle_report(trace)
        raise ValueError(f"unsupported algorithm {algorithm!r}")

    def _iteration_time(self, read_bytes: float, write_bytes: float, cpu_work: float) -> float:
        io_time = (read_bytes + write_bytes) / self._bandwidth
        cpu_time = cpu_work / self.cost.num_cores
        overhead = self.cost.num_shards * self.cost.shard_overhead
        return max(io_time, cpu_time) + overhead

    def _full_scan_report(self, trace: WorkloadTrace) -> BaselineReport:
        cost = self.cost
        graph_bytes = self._graph_bytes
        runtime = 0.0
        read_total = 0.0
        write_total = 0.0
        for stats in trace.iterations:
            # The whole graph is streamed regardless of the active count.
            reads = float(graph_bytes)
            writes = cost.write_fraction * graph_bytes
            cpu = self.image.out_csr.num_edges * 2 * cost.cpu_per_edge
            runtime += self._iteration_time(reads, writes, cpu)
            read_total += reads
            write_total += writes
        return self._report(trace, runtime, read_total, write_total)

    def _triangle_report(self, trace: WorkloadTrace) -> BaselineReport:
        cost = self.cost
        reads = float(self._graph_bytes * cost.triangle_passes)
        cpu = trace.total_edges * cost.cpu_per_join_unit
        runtime = max(reads / self._bandwidth, cpu / cost.num_cores)
        runtime += cost.triangle_passes * cost.num_shards * cost.shard_overhead
        return self._report(trace, runtime, reads, 0.0)

    def memory_bytes(self) -> float:
        """In-memory footprint: a few sliding windows plus vertex values."""
        return (
            3.0 * self._graph_bytes / self.cost.num_shards
            + 12.0 * self.image.num_vertices
        )

    def _report(
        self, trace: WorkloadTrace, runtime: float, reads: float, writes: float
    ) -> BaselineReport:
        return BaselineReport(
            system=self.name,
            algorithm=trace.algorithm,
            runtime=runtime,
            iterations=trace.num_iterations,
            bytes_read=reads,
            bytes_written=writes,
            memory_bytes=self.memory_bytes(),
            details={"total_edges_processed": trace.total_edges},
        )
